// Integration tests of the public PLFS API: write/read round trips,
// multi-writer merges, truncation, getattr fast path, flatten, rename —
// plus the central property test: any sequence of positional writes through
// PLFS must read back identical to the same writes applied to a flat file.
#include "plfs/plfs.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "plfs/container.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;
using ldplfs::testing::random_bytes;

std::string read_all(FileHandle& fd, std::size_t size,
                     std::uint64_t offset = 0) {
  std::string out(size, '\0');
  auto n = fd.read(
      std::span<std::byte>(reinterpret_cast<std::byte*>(out.data()), size),
      offset);
  EXPECT_TRUE(n.ok());
  out.resize(n.ok() ? n.value() : 0);
  return out;
}

TEST(PlfsApiTest, CreateWriteReadRoundTrip) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  auto fd = plfs_open(path, O_CREAT | O_RDWR, 100);
  ASSERT_TRUE(fd.ok());

  const std::string data = "the quick brown fox";
  auto n = fd.value()->write(as_bytes(data), 0, 100);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), data.size());

  EXPECT_EQ(read_all(*fd.value(), data.size()), data);
  ASSERT_TRUE(plfs_close(fd.value(), 100).ok());
}

TEST(PlfsApiTest, OpenMissingWithoutCreatFails) {
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("absent"), O_RDONLY, 1);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error_code(), ENOENT);
}

TEST(PlfsApiTest, ExclusiveCreateTwiceFails) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  ASSERT_TRUE(plfs_open(path, O_CREAT | O_EXCL | O_WRONLY, 1).ok());
  auto second = plfs_open(path, O_CREAT | O_EXCL | O_WRONLY, 1);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error_code(), EEXIST);
}

TEST(PlfsApiTest, OpenPlainDirectoryFails) {
  TempDir tmp;
  auto fd = plfs_open(tmp.path(), O_RDONLY, 1);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error_code(), EISDIR);
}

TEST(PlfsApiTest, WriteOnReadOnlyHandleFails) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  { auto w = plfs_open(path, O_CREAT | O_WRONLY, 1); ASSERT_TRUE(w.ok()); }
  auto fd = plfs_open(path, O_RDONLY, 1);
  ASSERT_TRUE(fd.ok());
  auto n = fd.value()->write(as_bytes("x"), 0, 1);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error_code(), EBADF);
}

TEST(PlfsApiTest, ReadOnWriteOnlyHandleFails) {
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  std::byte buf[4];
  auto n = fd.value()->read(std::span<std::byte>(buf, 4), 0);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error_code(), EBADF);
}

TEST(PlfsApiTest, OverwriteLastWriterWins) {
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_RDWR, 7);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("aaaaaaaaaa"), 0, 7).ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("BBB"), 3, 7).ok());
  EXPECT_EQ(read_all(*fd.value(), 10), "aaaBBBaaaa");
}

TEST(PlfsApiTest, SparseWriteReadsZerosInHole) {
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_RDWR, 7);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("end"), 100, 7).ok());
  const std::string content = read_all(*fd.value(), 103);
  ASSERT_EQ(content.size(), 103u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(content[i], '\0') << i;
  EXPECT_EQ(content.substr(100), "end");
  auto size = fd.value()->size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 103u);
}

TEST(PlfsApiTest, ReadPastEofIsShort) {
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_RDWR, 7);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("12345"), 0, 7).ok());
  EXPECT_EQ(read_all(*fd.value(), 100, 0), "12345");
  EXPECT_EQ(read_all(*fd.value(), 100, 5), "");
  EXPECT_EQ(read_all(*fd.value(), 100, 1000), "");
}

TEST(PlfsApiTest, MultiWriterPartitioning) {
  // The paper's core mechanism: n writers → n data droppings, one stream
  // each, merged into one logical file on read.
  TempDir tmp;
  const std::string path = tmp.sub("f");
  auto fd = plfs_open(path, O_CREAT | O_RDWR, 1);
  ASSERT_TRUE(fd.ok());

  constexpr int kWriters = 8;
  constexpr std::size_t kBlock = 1000;
  for (int w = 0; w < kWriters; ++w) {
    const std::string block(kBlock, static_cast<char>('A' + w));
    ASSERT_TRUE(fd.value()
                    ->write(as_bytes(block), w * kBlock,
                            static_cast<pid_t>(100 + w))
                    .ok());
  }
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_TRUE(fd.value()->close(static_cast<pid_t>(100 + w)).ok());
  }

  auto droppings = find_data_droppings(path);
  ASSERT_TRUE(droppings.ok());
  EXPECT_EQ(droppings.value().size(), kWriters);

  auto rd = plfs_open(path, O_RDONLY, 999);
  ASSERT_TRUE(rd.ok());
  const std::string content = read_all(*rd.value(), kWriters * kBlock);
  for (int w = 0; w < kWriters; ++w) {
    for (std::size_t i = 0; i < kBlock; ++i) {
      ASSERT_EQ(content[w * kBlock + i], 'A' + w) << "writer " << w;
    }
  }
}

TEST(PlfsApiTest, InterleavedStridedWriters) {
  // N-to-1 strided pattern (like collective MPI-IO): rank w writes every
  // Nth block.
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_RDWR, 1);
  ASSERT_TRUE(fd.ok());
  constexpr int kRanks = 4;
  constexpr int kSteps = 10;
  constexpr std::size_t kBlock = 128;
  for (int step = 0; step < kSteps; ++step) {
    for (int rank = 0; rank < kRanks; ++rank) {
      std::string block(kBlock, static_cast<char>('a' + rank));
      const std::uint64_t offset =
          (static_cast<std::uint64_t>(step) * kRanks + rank) * kBlock;
      ASSERT_TRUE(
          fd.value()->write(as_bytes(block), offset, 200 + rank).ok());
    }
  }
  const std::string content = read_all(*fd.value(), kRanks * kSteps * kBlock);
  for (int step = 0; step < kSteps; ++step) {
    for (int rank = 0; rank < kRanks; ++rank) {
      const std::size_t base = (step * kRanks + rank) * kBlock;
      ASSERT_EQ(content[base], 'a' + rank);
      ASSERT_EQ(content[base + kBlock - 1], 'a' + rank);
    }
  }
}

TEST(PlfsApiTest, TruncateToZeroViaOTrunc) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("old content"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  auto fd = plfs_open(path, O_WRONLY | O_TRUNC, 6);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("new"), 0, 6).ok());
  ASSERT_TRUE(plfs_close(fd.value(), 6).ok());

  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 3u);
}

TEST(PlfsApiTest, TruncateDownThenReadAndSize) {
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_RDWR, 5);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 0, 5).ok());
  ASSERT_TRUE(fd.value()->truncate(4, 5).ok());
  auto size = fd.value()->size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 4u);
  EXPECT_EQ(read_all(*fd.value(), 100), "0123");
}

TEST(PlfsApiTest, TruncateUpZeroFills) {
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_RDWR, 5);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("ab"), 0, 5).ok());
  ASSERT_TRUE(fd.value()->truncate(6, 5).ok());
  auto size = fd.value()->size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 6u);
  const std::string content = read_all(*fd.value(), 100);
  EXPECT_EQ(content, std::string("ab\0\0\0\0", 6));
}

TEST(PlfsApiTest, WriteAfterTruncateWins) {
  TempDir tmp;
  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_RDWR, 5);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 0, 5).ok());
  ASSERT_TRUE(fd.value()->truncate(0, 5).ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("XY"), 4, 5).ok());
  const std::string content = read_all(*fd.value(), 100);
  EXPECT_EQ(content, std::string("\0\0\0\0XY", 6));
}

TEST(PlfsApiTest, GetattrUsesHintsWhenClosed) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 10, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 20u);
  EXPECT_TRUE(attr.value().from_hints);
}

TEST(PlfsApiTest, GetattrFallsBackToIndexWhileOpen) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("abc"), 0, 5).ok());
  ASSERT_TRUE(fd.value()->sync(5).ok());
  auto attr = plfs_getattr(path);  // writer still open
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 3u);
  EXPECT_FALSE(attr.value().from_hints);
  ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
}

TEST(PlfsApiTest, GetattrReportsMode) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  { auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5, 0620); ASSERT_TRUE(fd.ok()); }
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().mode & 07777, 0620u);
}

TEST(PlfsApiTest, UnlinkRemovesContainer) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  { auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5); ASSERT_TRUE(fd.ok()); }
  ASSERT_TRUE(plfs_unlink(path).ok());
  EXPECT_FALSE(plfs_is_container(path));
  EXPECT_EQ(plfs_unlink(path).error_code(), ENOENT);
}

TEST(PlfsApiTest, RenameMovesContainer) {
  TempDir tmp;
  const std::string from = tmp.sub("a");
  const std::string to = tmp.sub("b");
  {
    auto fd = plfs_open(from, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("payload"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  ASSERT_TRUE(plfs_rename(from, to).ok());
  EXPECT_FALSE(plfs_is_container(from));
  ASSERT_TRUE(plfs_is_container(to));
  auto rd = plfs_open(to, O_RDONLY, 6);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(read_all(*rd.value(), 7), "payload");
}

TEST(PlfsApiTest, RenameOntoExistingReplaces) {
  TempDir tmp;
  const std::string from = tmp.sub("a");
  const std::string to = tmp.sub("b");
  {
    auto f1 = plfs_open(from, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(f1.ok());
    ASSERT_TRUE(f1.value()->write(as_bytes("new"), 0, 5).ok());
    auto f2 = plfs_open(to, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(f2.ok());
    ASSERT_TRUE(f2.value()->write(as_bytes("old"), 0, 5).ok());
  }
  ASSERT_TRUE(plfs_rename(from, to).ok());
  auto rd = plfs_open(to, O_RDONLY, 6);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(read_all(*rd.value(), 3), "new");
}

TEST(PlfsApiTest, ReaddirClassifiesEntries) {
  TempDir tmp;
  { auto fd = plfs_open(tmp.sub("file1"), O_CREAT | O_WRONLY, 5); ASSERT_TRUE(fd.ok()); }
  ASSERT_TRUE(posix::make_dir(tmp.sub("realdir")).ok());
  ASSERT_TRUE(posix::write_file(tmp.sub("plain"), "x").ok());

  auto entries = plfs_readdir(tmp.path());
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 3u);
  // list_dir sorts: file1, plain, realdir
  EXPECT_EQ(entries.value()[0].name, "file1");
  EXPECT_TRUE(entries.value()[0].is_plfs_file);
  EXPECT_EQ(entries.value()[1].name, "plain");
  EXPECT_FALSE(entries.value()[1].is_plfs_file);
  EXPECT_FALSE(entries.value()[1].is_directory);
  EXPECT_EQ(entries.value()[2].name, "realdir");
  EXPECT_TRUE(entries.value()[2].is_directory);
}

TEST(PlfsApiTest, FlattenPreservesContentAndShrinksIndexCount) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  auto fd = plfs_open(path, O_CREAT | O_RDWR, 1);
  ASSERT_TRUE(fd.ok());
  for (int w = 0; w < 6; ++w) {
    std::string block(100, static_cast<char>('0' + w));
    ASSERT_TRUE(fd.value()->write(as_bytes(block), w * 100, 300 + w).ok());
  }
  for (int w = 0; w < 6; ++w) ASSERT_TRUE(fd.value()->close(300 + w).ok());

  auto before = find_index_droppings(path);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().size(), 6u);

  ASSERT_TRUE(plfs_flatten(path).ok());

  auto after = find_index_droppings(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 1u);

  auto rd = plfs_open(path, O_RDONLY, 99);
  ASSERT_TRUE(rd.ok());
  const std::string content = read_all(*rd.value(), 600);
  for (int w = 0; w < 6; ++w) ASSERT_EQ(content[w * 100], '0' + w);
}

TEST(PlfsApiTest, AccessOnContainerAndMissing) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  { auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5); ASSERT_TRUE(fd.ok()); }
  EXPECT_TRUE(plfs_access(path, F_OK).ok());
  EXPECT_TRUE(plfs_access(path, R_OK | W_OK).ok());
  EXPECT_EQ(plfs_access(tmp.sub("none"), F_OK).error_code(), ENOENT);
}

TEST(PlfsApiTest, HugeSparseOffsetsCostNothingPhysical) {
  // Log-structured indexing makes a 5 GiB-sparse file practically free:
  // the container stores only the written bytes plus fixed-size records.
  TempDir tmp;
  const std::string path = tmp.sub("f");
  const std::uint64_t far_offset = 5ull << 30;  // 5 GiB
  {
    auto fd = plfs_open(path, O_CREAT | O_RDWR, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("near"), 0, 5).ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("far!"), far_offset, 5).ok());
    auto size = fd.value()->size();
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(size.value(), far_offset + 4);

    std::string out(4, '\0');
    auto n = fd.value()->read(
        {reinterpret_cast<std::byte*>(out.data()), out.size()}, far_offset);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(out, "far!");
    // A read spanning the hole boundary sees zeros then data.
    std::string edge(8, 'X');
    n = fd.value()->read(
        {reinterpret_cast<std::byte*>(edge.data()), edge.size()},
        far_offset - 4);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(edge, std::string("\0\0\0\0far!", 8));
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  // Physical footprint: 8 data bytes total across droppings.
  auto droppings = find_data_droppings(path);
  ASSERT_TRUE(droppings.ok());
  std::uint64_t physical = 0;
  for (const auto& d : droppings.value()) {
    auto st = posix::stat_path(d);
    ASSERT_TRUE(st.ok());
    physical += static_cast<std::uint64_t>(st.value().st_size);
  }
  EXPECT_EQ(physical, 8u);

  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, far_offset + 4);
}

// ---------------------------------------------------------------------------
// Property: random positional writes through PLFS == flat byte array.
// ---------------------------------------------------------------------------

class PlfsWritePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlfsWritePropertyTest, MatchesFlatFileReference) {
  constexpr std::size_t kMaxFile = 64 * 1024;
  TempDir tmp;
  Rng rng(GetParam() * 7919 + 13);

  auto fd = plfs_open(tmp.sub("f"), O_CREAT | O_RDWR, 1);
  ASSERT_TRUE(fd.ok());

  std::string reference;
  const int writers = 1 + static_cast<int>(rng.below(4));
  for (int op = 0; op < 120; ++op) {
    const std::uint64_t off = rng.below(kMaxFile / 2);
    const std::size_t len = 1 + rng.below(2048);
    const auto data = random_bytes(len, rng.next());
    const pid_t pid = static_cast<pid_t>(1 + rng.below(writers));

    ASSERT_TRUE(fd.value()->write(data, off, pid).ok());
    if (reference.size() < off + len) reference.resize(off + len, '\0');
    std::memcpy(reference.data() + off, data.data(), len);

    if (rng.below(8) == 0) {
      const std::uint64_t cut = rng.below(kMaxFile);
      ASSERT_TRUE(fd.value()->truncate(cut, pid).ok());
      reference.resize(std::min<std::size_t>(reference.size(), cut), '\0');
      if (cut > reference.size()) reference.resize(cut, '\0');
    }
  }

  auto size = fd.value()->size();
  ASSERT_TRUE(size.ok());
  ASSERT_EQ(size.value(), reference.size());
  EXPECT_EQ(read_all(*fd.value(), reference.size() + 64), reference);

  // And again through a fresh read-only open (forces full index merge).
  for (int w = 1; w <= writers; ++w) {
    ASSERT_TRUE(fd.value()->close(static_cast<pid_t>(w)).ok());
  }
  auto rd = plfs_open(tmp.sub("f"), O_RDONLY, 999);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(read_all(*rd.value(), reference.size() + 64), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlfsWritePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace ldplfs::plfs
