#include "plfs/index_format.hpp"

#include <gtest/gtest.h>

#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

IndexRecord data_rec(std::uint64_t log, std::uint64_t len, std::uint64_t phys,
                     std::uint64_t ts, std::uint32_t ref) {
  return IndexRecord{log, len, phys, ts, ref,
                     static_cast<std::uint32_t>(RecordKind::kData)};
}

std::string encode(const std::vector<std::string>& paths,
                   const std::vector<IndexRecord>& records) {
  std::string bytes = encode_index_header(paths);
  bytes.append(reinterpret_cast<const char*>(records.data()),
               records.size() * sizeof(IndexRecord));
  return bytes;
}

TEST(IndexFormatTest, HeaderOnlyRoundTrip) {
  const auto bytes = encode({"hostdir.0/dropping.data.1.h.1"}, {});
  auto parsed = decode_index_dropping(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().data_paths.size(), 1u);
  EXPECT_EQ(parsed.value().data_paths[0], "hostdir.0/dropping.data.1.h.1");
  EXPECT_TRUE(parsed.value().records.empty());
}

TEST(IndexFormatTest, RecordsRoundTrip) {
  const std::vector<IndexRecord> records = {
      data_rec(0, 100, 0, 1, 0), data_rec(100, 50, 100, 2, 1),
      IndexRecord{0, 77, 0, 3, 0,
                  static_cast<std::uint32_t>(RecordKind::kTruncate)}};
  const auto bytes = encode({"a", "b"}, records);
  auto parsed = decode_index_dropping(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().records.size(), 3u);
  EXPECT_EQ(parsed.value().records[1].logical_offset, 100u);
  EXPECT_EQ(parsed.value().records[1].dropping_ref, 1u);
  EXPECT_EQ(parsed.value().records[2].kind,
            static_cast<std::uint32_t>(RecordKind::kTruncate));
  EXPECT_EQ(parsed.value().records[2].length, 77u);
}

TEST(IndexFormatTest, MultiplePathsRoundTrip) {
  std::vector<std::string> paths;
  for (int i = 0; i < 100; ++i) {
    paths.push_back("hostdir." + std::to_string(i % 32) + "/dropping.data." +
                    std::to_string(i));
  }
  auto parsed = decode_index_dropping(encode(paths, {}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().data_paths, paths);
}

TEST(IndexFormatTest, TornTrailingRecordIsIgnored) {
  auto bytes = encode({"a"}, {data_rec(0, 10, 0, 1, 0)});
  // Simulate a crash mid-append: half a record at the tail.
  bytes.append(sizeof(IndexRecord) / 2, '\x5a');
  auto parsed = decode_index_dropping(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().records.size(), 1u);
}

TEST(IndexFormatTest, BadMagicRejected) {
  auto bytes = encode({"a"}, {});
  bytes[0] = 'X';
  EXPECT_FALSE(decode_index_dropping(bytes).ok());
}

TEST(IndexFormatTest, TruncatedHeaderRejected) {
  EXPECT_FALSE(decode_index_dropping("PLFS").ok());
  EXPECT_FALSE(decode_index_dropping("").ok());
}

TEST(IndexFormatTest, OutOfRangeDroppingRefRejected) {
  const auto bytes = encode({"only"}, {data_rec(0, 1, 0, 1, 5)});
  EXPECT_FALSE(decode_index_dropping(bytes).ok());
}

TEST(IndexFormatTest, PathTableLengthOverrunRejected) {
  // Header claims 2 paths but bytes end after the first.
  std::string bytes = encode_index_header({"abc"});
  // Patch the count to 2 (offset: 8 magic + 4 version).
  std::uint32_t two = 2;
  std::memcpy(bytes.data() + 12, &two, 4);
  EXPECT_FALSE(decode_index_dropping(bytes).ok());
}

TEST(IndexFormatTest, LoadFromDisk) {
  testing::TempDir tmp;
  const auto bytes = encode({"p"}, {data_rec(5, 6, 7, 8, 0)});
  ASSERT_TRUE(posix::write_file(tmp.sub("idx"), bytes).ok());
  auto parsed = load_index_dropping(tmp.sub("idx"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().records[0].physical_offset, 7u);
}

TEST(IndexFormatTest, LoadMissingFileFails) {
  testing::TempDir tmp;
  EXPECT_FALSE(load_index_dropping(tmp.sub("nope")).ok());
}

}  // namespace
}  // namespace ldplfs::plfs
