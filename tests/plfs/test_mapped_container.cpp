// MappedContainer: eligibility classification, registry lifetime
// (fingerprint staleness, LRU eviction under pins, prefix invalidation),
// and the engine's mapped-read fast path — including the map-lifetime
// guarantees: pages outlive registry eviction while pinned
// (munmap-after-close) and a writer invalidates the map end to end.
#include "plfs/mapped_container.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "plfs/compaction.hpp"
#include "plfs/container.hpp"
#include "plfs/index.hpp"
#include "plfs/index_cache.hpp"
#include "plfs/plfs.hpp"
#include "plfs/read_file.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

/// setenv for the test's scope, unsetenv on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

void write_container(const std::string& path, const std::string& content,
                     pid_t pid = 7) {
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, pid);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes(content), 0, pid).ok());
  ASSERT_TRUE(plfs_close(fd.value(), pid).ok());
}

std::string read_via_api(const std::string& path) {
  auto rf = ReadFile::open(path);
  EXPECT_TRUE(rf.ok());
  if (!rf.ok()) return {};
  std::string out(rf.value()->index().size(), '\0');
  auto n = rf.value()->read(
      {reinterpret_cast<std::byte*>(out.data()), out.size()}, 0);
  EXPECT_TRUE(n.ok());
  out.resize(n.ok() ? n.value() : 0);
  return out;
}

std::string region_str(const MappedRegion& region, std::size_t limit) {
  return {reinterpret_cast<const char*>(region.data()),
          std::min(region.size(), limit)};
}

TEST(FlatViewTest, CompactedContainerIsIdentityFlat) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  write_container(path, "hello mapped world");
  ASSERT_TRUE(plfs_compact(path).ok());

  auto index = GlobalIndex::build(path);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(single_dropping_of(index.value()).has_value());
  const auto view = identity_flat_view(index.value());
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->size, 18u);

  auto flat = plfs_flat_dropping(path);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.value().size, 18u);
  EXPECT_EQ(flat.value().dropping_abs.front(), '/');
  auto st = posix::stat_path(flat.value().dropping_abs);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(static_cast<std::uint64_t>(st.value().st_size), 18u);
}

TEST(FlatViewTest, MultiDroppingContainerIsNeitherTier) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  // Two writer pids on one handle → one data dropping per pid.
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("AAAA"), 0, 1).ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("BBBB"), 4, 2).ok());
  ASSERT_TRUE(fd.value()->close(1).ok());
  ASSERT_TRUE(plfs_close(fd.value(), 2).ok());

  auto index = GlobalIndex::build(path);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(single_dropping_of(index.value()).has_value());
  EXPECT_FALSE(identity_flat_view(index.value()).has_value());

  auto flat = plfs_flat_dropping(path);
  ASSERT_FALSE(flat.ok());
  EXPECT_EQ(flat.error_code(), ENODEV);
}

TEST(FlatViewTest, ShuffledSingleDroppingIsMappableButNotIdentityFlat) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  // Coalescing would reorder the log into logical order; pin it off so the
  // out-of-order layout actually reaches disk.
  EnvGuard no_coalesce("LDPLFS_COALESCE", "0");
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, 3);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("BBBB"), 4, 3).ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("AAAA"), 0, 3).ok());
  ASSERT_TRUE(plfs_close(fd.value(), 3).ok());

  auto index = GlobalIndex::build(path);
  ASSERT_TRUE(index.ok());
  // One dropping — the engine can still serve it from a map by piece
  // offsets — but logical != physical, so no offset passthrough.
  EXPECT_TRUE(single_dropping_of(index.value()).has_value());
  EXPECT_FALSE(identity_flat_view(index.value()).has_value());
}

TEST(FlatViewTest, TruncateUpTailRejectsIdentityFlat) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  write_container(path, "dense");
  {
    auto fd = plfs_open(path, O_WRONLY, 9);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->truncate(64, 9).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 9).ok());
  }
  auto index = GlobalIndex::build(path);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index.value().size(), 64u);
  // The tail [5, 64) has no backing bytes in the dropping.
  EXPECT_FALSE(identity_flat_view(index.value()).has_value());
}

TEST(MappedRegistryTest, AcquireHitsThenRemapsOnFingerprintChange) {
  TempDir tmp;
  const std::string file = tmp.sub("dropping");
  ASSERT_TRUE(posix::write_file(file, "first contents").ok());

  MappedContainerRegistry registry(4);
  auto first = registry.acquire(file);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(region_str(first.value(), 64), "first contents");
  EXPECT_EQ(registry.stats().misses, 1u);

  auto again = registry.acquire(file);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(registry.stats().hits, 1u);

  // Replace the file the way compaction does — a NEW inode renamed over
  // the old (droppings are never overwritten in place). Different
  // (ino, size) → stale fingerprint → remap; the old pin keeps the
  // unlinked inode's pages (no use-after-unmap for in-flight readers).
  ASSERT_TRUE(
      posix::write_file(tmp.sub("next"), "second, longer contents").ok());
  ASSERT_EQ(::rename(tmp.sub("next").c_str(), file.c_str()), 0);
  auto fresh = registry.acquire(file);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(region_str(fresh.value(), 64), "second, longer contents");
  EXPECT_GE(registry.stats().invalidations, 1u);
  EXPECT_EQ(region_str(first.value(), 64), "first contents");
}

TEST(MappedRegistryTest, EvictionAndInvalidationKeepPinnedPagesAlive) {
  TempDir tmp;
  MappedContainerRegistry registry(2);
  std::vector<MappedRegion> pins;
  for (int i = 0; i < 3; ++i) {
    const std::string file = tmp.sub("f" + std::to_string(i));
    ASSERT_TRUE(posix::write_file(file, "file " + std::to_string(i)).ok());
    auto region = registry.acquire(file);
    ASSERT_TRUE(region.ok());
    pins.push_back(std::move(region).value());
  }
  // Capacity 2: the LRU evicted the oldest entry, but its pin holds on.
  EXPECT_EQ(registry.mapped_count(), 2u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(region_str(pins[static_cast<std::size_t>(i)], 64),
              "file " + std::to_string(i));
  }
  // Prefix invalidation drops every registry entry; pinned pages survive
  // until the pins go (munmap happens when the last pin drops).
  registry.invalidate(tmp.path() + "/");
  EXPECT_EQ(registry.mapped_count(), 0u);
  EXPECT_EQ(region_str(pins[2], 64), "file 2");
  pins.clear();  // last pins drop → mappings unmapped here
}

TEST(MappedRegistryTest, ForceFallbackAndEmptyFileFail) {
  TempDir tmp;
  const std::string file = tmp.sub("f");
  ASSERT_TRUE(posix::write_file(file, "bytes").ok());
  MappedContainerRegistry registry(4);
  {
    EnvGuard force("LDPLFS_MMAP_FORCE_FALLBACK", "1");
    auto region = registry.acquire(file);
    ASSERT_FALSE(region.ok());
    EXPECT_EQ(region.error_code(), EIO);
  }
  const std::string empty = tmp.sub("empty");
  ASSERT_TRUE(posix::write_file(empty, "").ok());
  auto region = registry.acquire(empty);
  ASSERT_FALSE(region.ok());
  EXPECT_EQ(region.error_code(), ENODATA);
}

TEST(MappedReadTest, EngineServesFlattenedContainerWithZeroPreads) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  std::string content;
  for (int i = 0; i < 256; ++i) content += "payload line " + std::to_string(i) + "\n";
  write_container(path, content);
  ASSERT_TRUE(plfs_compact(path).ok());
  const std::string via_pread = read_via_api(path);
  ASSERT_EQ(via_pread, content);

  EnvGuard mmap_on("LDPLFS_MMAP_READS", "1");
  stats::force_enable(true);
  const auto before = stats::snapshot();
  EXPECT_EQ(read_via_api(path), content);
  const auto delta = stats::snapshot().since(before);
  EXPECT_GE(delta.get(stats::Counter::kMmapReads), 1u);
  EXPECT_EQ(delta.get(stats::Counter::kMmapBytes), content.size());
  EXPECT_EQ(delta.get(stats::Counter::kMmapFallbacks), 0u);
  // The whole read came from the map: the sieve/pread machinery idled.
  EXPECT_EQ(delta.get(stats::Counter::kSieveReads), 0u);
  EXPECT_EQ(delta.get(stats::Counter::kSieveBytesRead), 0u);
  stats::force_enable(false);
}

TEST(MappedReadTest, ForcedFallbackCountsAndStillReadsCorrectly) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  write_container(path, "fallback still works");
  ASSERT_TRUE(plfs_compact(path).ok());

  EnvGuard mmap_on("LDPLFS_MMAP_READS", "1");
  EnvGuard force("LDPLFS_MMAP_FORCE_FALLBACK", "1");
  stats::force_enable(true);
  const auto before = stats::snapshot();
  EXPECT_EQ(read_via_api(path), "fallback still works");
  const auto delta = stats::snapshot().since(before);
  EXPECT_EQ(delta.get(stats::Counter::kMmapReads), 0u);
  EXPECT_GE(delta.get(stats::Counter::kMmapFallbacks), 1u);
  stats::force_enable(false);
}

TEST(MappedReadTest, WriterInvalidatesMapAndReadersSeeNewBytes) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  write_container(path, "generation one");
  ASSERT_TRUE(plfs_compact(path).ok());

  EnvGuard mmap_on("LDPLFS_MMAP_READS", "1");
  EXPECT_EQ(read_via_api(path), "generation one");  // mapped

  // A writer appends: the container grows a second dropping and the write
  // path flushes every process-wide cache (index, fds, mappings).
  {
    auto fd = plfs_open(path, O_WRONLY, 11);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes(" and two"), 14, 11).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 11).ok());
  }
  EXPECT_EQ(read_via_api(path), "generation one and two");
}

TEST(MappedRegistryTest, ConcurrentAcquireAndInvalidateStaysCoherent) {
  TempDir tmp;
  const std::string file = tmp.sub("hot");
  const std::string content(8192, 'Q');
  ASSERT_TRUE(posix::write_file(file, content).ok());

  MappedContainerRegistry registry(2);
  constexpr int kReaders = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        auto region = registry.acquire(file);
        ASSERT_TRUE(region.ok());
        // Touch first and last byte of the mapping while an invalidator
        // races: pins must keep the pages mapped.
        const auto* bytes =
            reinterpret_cast<const char*>(region.value().data());
        ASSERT_EQ(bytes[0], 'Q');
        ASSERT_EQ(bytes[region.value().size() - 1], 'Q');
      }
    });
  }
  std::thread invalidator([&] {
    for (int i = 0; i < kRounds; ++i) registry.invalidate(tmp.path() + "/");
  });
  for (auto& t : readers) t.join();
  invalidator.join();
  EXPECT_EQ(region_str(registry.acquire(file).value(), 1), "Q");
}

TEST(AutoFlattenTest, ReadOnlyOpenOfMultiDroppingContainerCompactsInBackground) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  // Two writer pids -> two data droppings: eligible for background
  // compaction once nobody holds it open for writing.
  write_container(path, "generation one ", /*pid=*/7);
  {
    auto fd = plfs_open(path, O_WRONLY, 8);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes(std::string("and two")), 15, 8).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 8).ok());
  }
  ASSERT_EQ(find_data_droppings(path).value().size(), 2u);

  EnvGuard auto_on("LDPLFS_AUTO_FLATTEN", "1");
  stats::force_enable(true);
  const auto before = stats::snapshot();
  auto fd = plfs_open(path, O_RDONLY, 9);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(plfs_close(fd.value(), 9).ok());
  EXPECT_EQ(stats::snapshot().since(before).get(
                stats::Counter::kAutoFlattenKicked),
            1u);

  // The compaction runs on the shared pool; poll until it lands.
  bool flattened = false;
  for (int i = 0; i < 500 && !flattened; ++i) {
    auto droppings = find_data_droppings(path);
    ASSERT_TRUE(droppings.ok());
    flattened = droppings.value().size() == 1;
    if (!flattened) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(flattened);
  EXPECT_EQ(read_via_api(path), "generation one and two");

  // A second read-only open of the same path must not kick again.
  const auto again = stats::snapshot();
  auto fd2 = plfs_open(path, O_RDONLY, 10);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(plfs_close(fd2.value(), 10).ok());
  EXPECT_EQ(stats::snapshot().since(again).get(
                stats::Counter::kAutoFlattenKicked),
            0u);
  stats::force_enable(false);
}

}  // namespace
}  // namespace ldplfs::plfs
