// List-I/O batch API (plfs_readx / plfs_writex) against serial oracles.
//
// The batch calls promise the same bytes as issuing every segment as its
// own read()/write() in list order — whatever the sieving and coalescing
// knobs say. The property tests here drive seeded random segment lists
// (overlapping, exactly adjacent, out-of-order offsets) through both the
// batch call and the one-call-at-a-time oracle and require byte-identical
// results with each optimisation forced on and off.
#include <fcntl.h>
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "plfs/plfs.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;
using ldplfs::testing::random_bytes;

constexpr pid_t kPid = 7;

class ListIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("LDPLFS_SIEVE");
    ::unsetenv("LDPLFS_SIEVE_MAX_HOLE");
    ::unsetenv("LDPLFS_SIEVE_BUFFER");
    ::unsetenv("LDPLFS_COALESCE");
    ::unsetenv("LDPLFS_THREADS");
  }
  TempDir tmp_;
};

/// Build a container with a seeded random content layout and return the
/// flat-file oracle of its contents.
std::vector<char> populate(const std::string& path, Rng& rng,
                           std::size_t max_file) {
  std::vector<char> oracle;
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kPid);
  EXPECT_TRUE(fd.ok());
  const int ops = 20 + static_cast<int>(rng.below(30));
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t off = rng.below(max_file / 2);
    const std::size_t len = 1 + rng.below(max_file / 8);
    const auto data = random_bytes(len, rng.next());
    EXPECT_TRUE(fd.value()->write(data, off, kPid).ok());
    if (oracle.size() < off + len) oracle.resize(off + len, '\0');
    std::memcpy(oracle.data() + off, data.data(), len);
  }
  EXPECT_TRUE(plfs_close(fd.value(), kPid).ok());
  return oracle;
}

/// Random segment list: mostly small, some overlapping or exactly adjacent,
/// shuffled so offsets arrive out of order.
std::vector<std::pair<std::uint64_t, std::size_t>> random_segments(
    Rng& rng, std::uint64_t span, int count) {
  std::vector<std::pair<std::uint64_t, std::size_t>> segs;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t kind = rng.below(4);
    std::uint64_t off;
    if (kind == 0 && !segs.empty()) {
      // Exactly adjacent to the previous segment.
      off = segs.back().first + segs.back().second;
    } else if (kind == 1 && !segs.empty()) {
      // Overlapping the previous segment.
      off = segs.back().first + rng.below(segs.back().second + 1);
    } else {
      off = rng.below(span);
    }
    const std::size_t len = 1 + rng.below(span / 8 + 1);
    segs.emplace_back(off, len);
  }
  // Shuffle so the batch sees out-of-order offsets.
  for (std::size_t i = segs.size(); i > 1; --i) {
    std::swap(segs[i - 1], segs[rng.below(i)]);
  }
  return segs;
}

class ListIoReadPropertyTest
    : public ListIoTest,
      public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(ListIoReadPropertyTest, ReadxMatchesSerialOracle) {
  constexpr std::uint64_t kSpan = 32 * 1024;
  Rng rng(GetParam() * 6151 + 3);
  const std::string path = tmp_.sub("f");
  const auto oracle = populate(path, rng, kSpan);

  for (const bool sieve : {true, false}) {
    for (const char* threads : {"1", "4"}) {
      ::setenv("LDPLFS_SIEVE", sieve ? "1" : "0", 1);
      // Tiny hole/buffer caps on half the runs push multi-run splits.
      if (rng.below(2) == 0) {
        ::setenv("LDPLFS_SIEVE_MAX_HOLE", "64", 1);
        ::setenv("LDPLFS_SIEVE_BUFFER", "64K", 1);
      }
      ::setenv("LDPLFS_THREADS", threads, 1);

      auto fd = plfs_open(path, O_RDONLY, kPid + 1);
      ASSERT_TRUE(fd.ok());
      const auto layout = random_segments(rng, kSpan, 12);

      std::vector<std::vector<std::byte>> batch_bufs;
      std::vector<ReadSegment> segs;
      for (const auto& [off, len] : layout) {
        batch_bufs.emplace_back(len);
        segs.push_back(ReadSegment{off, batch_bufs.back()});
      }
      auto got = plfs_readx(*fd.value(), segs);
      ASSERT_TRUE(got.ok());

      // Serial oracle: each segment as its own positional read — and both
      // must agree with the independent flat-file oracle.
      std::size_t expect_total = 0;
      for (std::size_t i = 0; i < layout.size(); ++i) {
        std::vector<std::byte> one(layout[i].second);
        auto n = fd.value()->read(one, layout[i].first);
        ASSERT_TRUE(n.ok());
        one.resize(n.value());
        ASSERT_GE(batch_bufs[i].size(), one.size());
        EXPECT_EQ(std::memcmp(batch_bufs[i].data(), one.data(), one.size()),
                  0)
            << "segment " << i << " sieve=" << sieve
            << " threads=" << threads;
        if (n.value() > 0) {
          ASSERT_LE(layout[i].first + n.value(), oracle.size());
          EXPECT_EQ(std::memcmp(one.data(), oracle.data() + layout[i].first,
                                n.value()),
                    0)
              << "segment " << i << " vs flat oracle";
        }
        expect_total += n.value();
        if (n.value() < layout[i].second) break;  // batch stops at EOF
      }
      EXPECT_EQ(got.value(), expect_total)
          << "sieve=" << sieve << " threads=" << threads;
      ASSERT_TRUE(plfs_close(fd.value(), kPid + 1).ok());
      ::unsetenv("LDPLFS_SIEVE_MAX_HOLE");
      ::unsetenv("LDPLFS_SIEVE_BUFFER");
    }
  }
}

TEST_P(ListIoReadPropertyTest, WritexMatchesSerialOracle) {
  constexpr std::uint64_t kSpan = 32 * 1024;
  Rng rng(GetParam() * 12289 + 17);

  for (const bool coalesce : {true, false}) {
    ::setenv("LDPLFS_COALESCE", coalesce ? "1" : "0", 1);
    const std::string suffix = coalesce ? "c1" : "c0";
    const std::string batch_path = tmp_.sub("batch-" + suffix);
    const std::string serial_path = tmp_.sub("serial-" + suffix);

    const auto layout = random_segments(rng, kSpan, 12);
    std::vector<std::vector<std::byte>> payloads;
    for (const auto& [off, len] : layout) {
      (void)off;
      payloads.push_back(random_bytes(len, rng.next()));
    }

    // Batch container: one writex for the whole list.
    {
      auto fd = plfs_open(batch_path, O_CREAT | O_WRONLY, kPid);
      ASSERT_TRUE(fd.ok());
      std::vector<WriteSegment> segs;
      for (std::size_t i = 0; i < layout.size(); ++i) {
        segs.push_back(WriteSegment{layout[i].first, payloads[i]});
      }
      auto n = plfs_writex(*fd.value(), segs, kPid);
      ASSERT_TRUE(n.ok());
      std::size_t expect = 0;
      for (const auto& p : payloads) expect += p.size();
      EXPECT_EQ(n.value(), expect);
      ASSERT_TRUE(plfs_close(fd.value(), kPid).ok());
    }
    // Serial container: the same list one write at a time.
    {
      auto fd = plfs_open(serial_path, O_CREAT | O_WRONLY, kPid);
      ASSERT_TRUE(fd.ok());
      for (std::size_t i = 0; i < layout.size(); ++i) {
        ASSERT_TRUE(
            fd.value()->write(payloads[i], layout[i].first, kPid).ok());
      }
      ASSERT_TRUE(plfs_close(fd.value(), kPid).ok());
    }

    // Byte-identical logical contents from cold opens.
    auto ba = plfs_open(batch_path, O_RDONLY, kPid + 1);
    auto sa = plfs_open(serial_path, O_RDONLY, kPid + 1);
    ASSERT_TRUE(ba.ok());
    ASSERT_TRUE(sa.ok());
    auto bsize = ba.value()->size();
    auto ssize = sa.value()->size();
    ASSERT_TRUE(bsize.ok());
    ASSERT_TRUE(ssize.ok());
    EXPECT_EQ(bsize.value(), ssize.value()) << "coalesce=" << coalesce;
    std::vector<std::byte> bbuf(bsize.value());
    std::vector<std::byte> sbuf(ssize.value());
    auto bn = ba.value()->read(bbuf, 0);
    auto sn = sa.value()->read(sbuf, 0);
    ASSERT_TRUE(bn.ok());
    ASSERT_TRUE(sn.ok());
    ASSERT_EQ(bn.value(), sn.value());
    EXPECT_EQ(std::memcmp(bbuf.data(), sbuf.data(), bn.value()), 0)
        << "coalesce=" << coalesce;
    ASSERT_TRUE(plfs_close(ba.value(), kPid + 1).ok());
    ASSERT_TRUE(plfs_close(sa.value(), kPid + 1).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListIoReadPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// Regression: a batch whose middle segment crosses EOF must count every
// byte delivered up to and including the short segment — and nothing after
// it — mirroring POSIX readv's contiguous-prefix contract. (The routed
// readv used to sum per-segment calls even after a short one.)
TEST_F(ListIoTest, ShortReadInTheMiddleCountsPrefixOnly) {
  const std::string path = tmp_.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, kPid);
    ASSERT_TRUE(fd.ok());
    const auto data = random_bytes(1000, 42);
    ASSERT_TRUE(fd.value()->write(data, 0, kPid).ok());
    ASSERT_TRUE(plfs_close(fd.value(), kPid).ok());
  }
  auto fd = plfs_open(path, O_RDONLY, kPid);
  ASSERT_TRUE(fd.ok());

  std::vector<std::byte> b0(400), b1(400), b2(400);
  const ReadSegment segs[] = {
      {0, b0},    // full
      {800, b1},  // short: only 200 bytes before EOF
      {0, b2},    // must NOT be counted (or delivered) after the short one
  };
  auto n = fd.value()->readx(segs);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 400u + 200u);

  // Segment fully past EOF ends the batch with whatever came before.
  const ReadSegment past[] = {{0, b0}, {4096, b1}};
  auto m = fd.value()->readx(past);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value(), 400u);
  ASSERT_TRUE(plfs_close(fd.value(), kPid).ok());
}

// Zero-length and empty batches are no-ops, not errors.
TEST_F(ListIoTest, EmptyAndZeroLengthSegments) {
  const std::string path = tmp_.sub("f");
  auto fd = plfs_open(path, O_CREAT | O_RDWR, kPid);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("abcdef"), 0, kPid).ok());

  auto w = fd.value()->writex({}, kPid);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), 0u);

  std::vector<std::byte> buf(3);
  const ReadSegment segs[] = {{0, {}}, {3, buf}};
  auto r = fd.value()->readx(segs);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 3u);
  EXPECT_EQ(std::memcmp(buf.data(), "def", 3), 0);
  ASSERT_TRUE(plfs_close(fd.value(), kPid).ok());
}

// The sieve must not change what a strided batch reads, and its counters
// must prove a covering read actually happened (holes skipped, more bytes
// read than delivered only when holes sit inside the covering span).
TEST_F(ListIoTest, SievedStridedBatchCountersAddUp) {
  const std::string path = tmp_.sub("f");
  constexpr std::size_t kBlock = 512;
  constexpr int kBlocks = 16;
  {
    // One writer, contiguous log: blocks at stride 2*kBlock (holes between).
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, kPid);
    ASSERT_TRUE(fd.ok());
    for (int b = 0; b < kBlocks; ++b) {
      const auto data = random_bytes(kBlock, 1000 + b);
      ASSERT_TRUE(
          fd.value()
              ->write(data, static_cast<std::uint64_t>(b) * 2 * kBlock, kPid)
              .ok());
    }
    ASSERT_TRUE(plfs_close(fd.value(), kPid).ok());
  }

  ::setenv("LDPLFS_SIEVE", "1", 1);
  ::setenv("LDPLFS_THREADS", "1", 1);
  stats::force_enable(true);
  const auto before = stats::snapshot();

  auto fd = plfs_open(path, O_RDONLY, kPid);
  ASSERT_TRUE(fd.ok());
  std::vector<std::vector<std::byte>> bufs;
  std::vector<ReadSegment> segs;
  for (int b = 0; b < kBlocks; ++b) {
    bufs.emplace_back(kBlock);
    segs.push_back(
        ReadSegment{static_cast<std::uint64_t>(b) * 2 * kBlock, bufs.back()});
  }
  auto n = fd.value()->readx(segs);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), static_cast<std::size_t>(kBlocks) * kBlock);
  for (int b = 0; b < kBlocks; ++b) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(b)],
              random_bytes(kBlock, 1000 + b))
        << "block " << b;
  }

  // The log is physically contiguous (one writer, blocks appended in
  // order), so the whole strided batch must collapse into one covering
  // pread: bytes read == bytes delivered, no holes inside the span.
  const auto delta = stats::snapshot().since(before);
  EXPECT_EQ(delta.get(stats::Counter::kSieveReads), 1u);
  EXPECT_EQ(delta.get(stats::Counter::kSieveDirectReads), 0u);
  EXPECT_EQ(delta.get(stats::Counter::kSieveBytesRead),
            delta.get(stats::Counter::kSieveBytesDelivered));
  ASSERT_TRUE(plfs_close(fd.value(), kPid).ok());
}

}  // namespace
}  // namespace ldplfs::plfs
