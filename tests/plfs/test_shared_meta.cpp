// Cross-process metadata plane (plfs/shared_meta): attach/latch semantics,
// generation bumps, writer registration, dead-registrant reclaim after
// SIGKILL, slot-table exhaustion fallback, the cheap-create fast path, and
// the end-to-end property the plane exists for — a warm IndexCache in one
// process observing another process's writes without fingerprint stats.
//
// Each fixture test attaches its own uniquely-named segment (LDPLFS_SHM
// accepts an explicit "/name") and unlinks it on teardown, so suites are
// hermetic and runs never collide across test binaries.
#include "plfs/shared_meta.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "plfs/recovery.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

class SharedMetaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    name_ = "/ldplfs.test." + std::to_string(::getpid()) + "." +
            std::to_string(counter++);
    ::setenv("LDPLFS_SHM", name_.c_str(), 1);
    shmeta::reattach_for_testing();
    ASSERT_TRUE(shmeta::active()) << "segment " << name_;
  }

  void TearDown() override {
    shmeta::unlink_segment();
    ::unsetenv("LDPLFS_SHM");
    shmeta::reattach_for_testing();  // leave the plane off for other suites
  }

  std::string name_;
};

TEST(SharedMetaOffTest, InactiveWhenUnset) {
  ::unsetenv("LDPLFS_SHM");
  shmeta::reattach_for_testing();
  EXPECT_FALSE(shmeta::active());
  EXPECT_EQ(shmeta::segment_name(), "");
  EXPECT_FALSE(shmeta::generation("/b/f").has_value());
  shmeta::bump("/b/f");  // no-op, must not crash
  EXPECT_EQ(shmeta::register_writer("/b/f"), -1);
  shmeta::unregister_writer(-1);
  EXPECT_FALSE(shmeta::has_foreign_writers("/b/f"));
  EXPECT_FALSE(shmeta::inspect().attached);
}

TEST(SharedMetaOffTest, InactiveWhenZero) {
  ::setenv("LDPLFS_SHM", "0", 1);
  shmeta::reattach_for_testing();
  EXPECT_FALSE(shmeta::active());
  ::unsetenv("LDPLFS_SHM");
  shmeta::reattach_for_testing();
}

TEST_F(SharedMetaTest, AttachReportsSegment) {
  EXPECT_EQ(shmeta::segment_name(), name_);
  const auto view = shmeta::inspect();
  EXPECT_TRUE(view.attached);
  EXPECT_EQ(view.name, name_);
  EXPECT_EQ(view.version, shmeta::kVersion);
  EXPECT_EQ(view.containers_used, 0u);
  EXPECT_TRUE(view.writers.empty());
  EXPECT_EQ(view.reclaims, 0u);
}

TEST_F(SharedMetaTest, KeyIsStableAndNeverZero) {
  EXPECT_NE(shmeta::key_of(""), 0u);
  EXPECT_NE(shmeta::key_of("/b/f"), 0u);
  EXPECT_EQ(shmeta::key_of("/b/f"), shmeta::key_of("/b/f"));
  EXPECT_NE(shmeta::key_of("/b/f"), shmeta::key_of("/b/g"));
}

TEST_F(SharedMetaTest, GenerationStartsAtZeroAndOnlyGrows) {
  const std::string root = "/backend/file";
  auto gen = shmeta::generation(root);
  ASSERT_TRUE(gen.has_value());
  EXPECT_EQ(*gen, 0u);
  shmeta::bump(root);
  EXPECT_EQ(shmeta::generation(root).value(), 1u);
  shmeta::bump(root);
  shmeta::bump(root);
  EXPECT_EQ(shmeta::generation(root).value(), 3u);
}

TEST_F(SharedMetaTest, GenerationsAreIndependentPerRoot) {
  shmeta::bump("/b/one");
  shmeta::bump("/b/one");
  EXPECT_EQ(shmeta::generation("/b/one").value(), 2u);
  EXPECT_EQ(shmeta::generation("/b/two").value(), 0u);
  EXPECT_EQ(shmeta::inspect().containers_used, 2u);
}

TEST_F(SharedMetaTest, WriterRegistrationRoundTrip) {
  const std::string root = "/b/f";
  // My own registration is never "foreign".
  const int slot = shmeta::register_writer(root);
  ASSERT_GE(slot, 0);
  EXPECT_FALSE(shmeta::has_foreign_writers(root));
  EXPECT_FALSE(shmeta::has_foreign_writers("/b/other"));

  auto view = shmeta::inspect();
  ASSERT_EQ(view.writers.size(), 1u);
  EXPECT_EQ(view.writers[0].pid, ::getpid());
  EXPECT_EQ(view.writers[0].key, shmeta::key_of(root));
  EXPECT_TRUE(view.writers[0].alive);

  shmeta::unregister_writer(slot);
  EXPECT_TRUE(shmeta::inspect().writers.empty());
  shmeta::unregister_writer(-1);  // no-op
}

// A forked child registers as a writer and is then SIGKILLed while still
// holding its slot — exactly the crash the plane must absorb. The parent
// must (a) see the live child as a foreign writer, (b) reclaim the slot
// once the pid is gone, and (c) keep using the segment normally after.
TEST_F(SharedMetaTest, SigkilledRegistrantIsReclaimed) {
  const std::string root = "/b/f";
  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(ready[0]);
    const int slot = shmeta::register_writer(root);
    char byte = slot >= 0 ? 'k' : 'e';
    (void)!::write(ready[1], &byte, 1);
    ::pause();  // hold the slot until the parent SIGKILLs us
    ::_exit(0);
  }

  ::close(ready[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ::close(ready[0]);
  ASSERT_EQ(byte, 'k') << "child failed to register";

  EXPECT_TRUE(shmeta::has_foreign_writers(root));
  EXPECT_FALSE(shmeta::has_foreign_writers("/b/other"));

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The dead registrant is invisible and its slot is reclaimed in passing.
  EXPECT_FALSE(shmeta::has_foreign_writers(root));
  EXPECT_GE(shmeta::inspect().reclaims, 1u);

  // Segment stays fully usable: fresh registration and generations work.
  const int slot = shmeta::register_writer(root);
  EXPECT_GE(slot, 0);
  shmeta::bump(root);
  EXPECT_TRUE(shmeta::generation(root).has_value());
  shmeta::unregister_writer(slot);
}

// Fill the container table past capacity: with kContainerSlots slots and
// far more distinct roots, later roots must fail their bounded probe and
// return nullopt (the caller falls back to fingerprint validation), while
// already-claimed roots keep answering.
TEST_F(SharedMetaTest, ExhaustedTableFallsBackGracefully) {
  const std::string first = "/b/claimed-early";
  shmeta::bump(first);
  ASSERT_EQ(shmeta::generation(first).value(), 1u);

  std::size_t misses = 0;
  const std::size_t attempts = 4 * shmeta::kContainerSlots;
  for (std::size_t i = 0; i < attempts; ++i) {
    if (!shmeta::generation("/b/flood/" + std::to_string(i)).has_value()) {
      ++misses;
      shmeta::bump("/b/flood/" + std::to_string(i));  // safe no-op
    }
  }
  // attempts >> slots, so by pigeonhole most claims must have missed.
  EXPECT_GE(misses, attempts - shmeta::kContainerSlots);
  EXPECT_LE(shmeta::inspect().containers_used, shmeta::kContainerSlots);
  // Early claims survive exhaustion.
  EXPECT_EQ(shmeta::generation(first).value(), 1u);
}

// The end-to-end property: process A warms its IndexCache, process B (a
// forked child) appends and closes, and process A's next open sees the new
// bytes because B's close bumped the shared generation. With the plane on,
// the hit path performs no stat-based fingerprinting — only the generation
// can invalidate, so reading fresh data proves the bump propagated.
TEST_F(SharedMetaTest, ForkedWriterInvalidatesWarmIndexCache) {
  TempDir tmp;
  const std::string path = tmp.sub("f");

  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 100);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("AAAA"), 0, 100).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 100).ok());
  }
  {
    // Warm the cache with the 4-byte index.
    auto fd = plfs_open(path, O_RDONLY, 101);
    ASSERT_TRUE(fd.ok());
    std::byte buf[8];
    auto n = fd.value()->read(std::span<std::byte>(buf, 8), 0);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(n.value(), 4u);
    ASSERT_TRUE(plfs_close(fd.value(), 101).ok());
  }

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto fd = plfs_open(path, O_WRONLY, 200);
    if (!fd.ok()) ::_exit(1);
    if (!fd.value()->write(as_bytes("BBBB"), 4, 200).ok()) ::_exit(2);
    if (!plfs_close(fd.value(), 200).ok()) ::_exit(3);
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  auto fd = plfs_open(path, O_RDONLY, 102);
  ASSERT_TRUE(fd.ok());
  std::byte buf[8];
  auto n = fd.value()->read(std::span<std::byte>(buf, 8), 0);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 8u) << "stale index: child's append is invisible";
  EXPECT_EQ(testing::to_string(std::span<const std::byte>(buf, 8)),
            "AAAABBBB");
  ASSERT_TRUE(plfs_close(fd.value(), 102).ok());
}

// A live foreign writer must block the zero-copy mapped-read fast path; the
// registration is what plfs_flat_dropping and the auto-flatten trigger
// consult. Covered here at the primitive level (the engine-level gate is a
// one-line check against this primitive).
TEST_F(SharedMetaTest, ForeignWriterVisibleWhileContainerOpen) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(ready[0]);
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 300);
    char byte = fd.ok() ? 'k' : 'e';
    (void)!::write(ready[1], &byte, 1);
    ::pause();  // stay open-for-write until killed
    ::_exit(0);
  }

  ::close(ready[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ::close(ready[0]);
  ASSERT_EQ(byte, 'k');

  EXPECT_TRUE(shmeta::has_foreign_writers(path));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_FALSE(shmeta::has_foreign_writers(path));
}

// --- cheap-create fast path (LDPLFS_FAST_CREATE) -------------------------
// Independent of the shared segment: these run with the plane off.

class FastCreateTest : public ::testing::Test {
 protected:
  void SetUp() override { ::setenv("LDPLFS_FAST_CREATE", "1", 1); }
  void TearDown() override { ::unsetenv("LDPLFS_FAST_CREATE"); }
};

TEST_F(FastCreateTest, EnabledFollowsEnv) {
  EXPECT_TRUE(fast_create_enabled());
  ::setenv("LDPLFS_FAST_CREATE", "0", 1);
  EXPECT_FALSE(fast_create_enabled());
  ::unsetenv("LDPLFS_FAST_CREATE");
  EXPECT_FALSE(fast_create_enabled());
}

TEST_F(FastCreateTest, CreatesRecognizableContainer) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  ASSERT_TRUE(create_container_fast(path, 0640).ok());
  EXPECT_TRUE(is_container(path));
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 0u);
  EXPECT_EQ(attr.value().mode, 0640u);
}

TEST_F(FastCreateTest, CreateOnExistingFails) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  ASSERT_TRUE(create_container_fast(path, 0644).ok());
  auto again = create_container_fast(path, 0644);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error_code(), EEXIST);
}

TEST_F(FastCreateTest, RecoverSkeletalContainerAfterEarlyCrash) {
  // A writer SIGKILL'd right after create_container_fast leaves the most
  // skeletal legal container: the directory and the access marker, no
  // openhosts/, no metadata/. Recovery must repair it, not report ENOENT
  // (it used to fail listing the missing openhosts/ and writing the hint
  // into the missing metadata/).
  TempDir tmp;
  const std::string path = tmp.sub("f");
  ASSERT_TRUE(create_container_fast(path, 0644).ok());
  ASSERT_TRUE(is_container(path));

  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok()) << stats.error().message();
  EXPECT_EQ(stats.value().logical_size, 0u);
  EXPECT_EQ(stats.value().stale_openhosts_removed, 0u);
  EXPECT_EQ(stats.value().hints_rewritten, 1u);

  // The repaired container is fully usable: write, read back, stat.
  auto fd = plfs_open(path, O_WRONLY, 77);
  ASSERT_TRUE(fd.ok());
  const std::string data = "post-recovery bytes";
  ASSERT_TRUE(fd.value()->write(as_bytes(data), 0, 77).ok());
  ASSERT_TRUE(plfs_close(fd.value(), 77).ok());
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, data.size());
}

TEST_F(FastCreateTest, WriteReadRoundTripThroughFastContainer) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  // plfs_open consults the env per create, so this exercises the real
  // open-time dispatch, plus the on-demand openhosts/metadata scaffolding
  // the write path must build for a skeletal container.
  auto fd = plfs_open(path, O_CREAT | O_RDWR, 42);
  ASSERT_TRUE(fd.ok());
  const std::string data = "fast create still stores bytes";
  ASSERT_TRUE(fd.value()->write(as_bytes(data), 0, 42).ok());
  ASSERT_TRUE(plfs_close(fd.value(), 42).ok());

  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, data.size());

  auto rd = plfs_open(path, O_RDONLY, 43);
  ASSERT_TRUE(rd.ok());
  std::string out(data.size(), '\0');
  auto n = rd.value()->read(
      std::span<std::byte>(reinterpret_cast<std::byte*>(out.data()),
                           out.size()),
      0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), data.size());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(plfs_close(rd.value(), 43).ok());

  ASSERT_TRUE(plfs_unlink(path).ok());
  EXPECT_FALSE(is_container(path));
}

}  // namespace
}  // namespace ldplfs::plfs
