// The parallel read engine and the process-wide caches behind it.
//
// Covers: parallel result == serial result (byte-exact) on multi-dropping
// strided containers, hole zero-fill, first-error-wins semantics, the
// stat-validated IndexCache (hits, staleness detection, explicit
// invalidation via truncate/rename/unlink/writer-close, LDPLFS_INDEX_CACHE=0
// escape hatch), the shared LRU dropping-fd cache (reuse, cap, pinned fds
// surviving eviction), and multi-threaded readers hammering one container
// while the pool services their piece batches. Runs under TSan via the
// `tsan` ctest label.
#include <fcntl.h>
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "plfs/container.hpp"
#include "plfs/fd_cache.hpp"
#include "plfs/index_cache.hpp"
#include "plfs/plfs.hpp"
#include "plfs/read_file.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

/// Set a variable for one test body, restoring the previous value after.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_;
  std::string old_;
};

/// Pin the shared pool's size before any test runs: the pool is created
/// once, and these suites want real workers regardless of test order.
class PoolEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    ::setenv("LDPLFS_THREADS", "4", 1);
    ASSERT_EQ(ThreadPool::shared().size(), 4u);
  }
};
const auto* const g_pool_env =
    ::testing::AddGlobalTestEnvironment(new PoolEnvironment);

/// Write a strided N-1 pattern through `writers` writer streams (one data
/// dropping each): block b of the logical file belongs to writer b %
/// writers. Returns the expected logical file contents.
std::vector<std::byte> build_strided(const std::string& path, int writers,
                                     int blocks_per_writer,
                                     std::size_t block) {
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, 1);
  EXPECT_TRUE(fd.ok());
  const std::size_t total =
      static_cast<std::size_t>(writers) * blocks_per_writer * block;
  std::vector<std::byte> expected(total);
  for (int w = 0; w < writers; ++w) {
    for (int b = 0; b < blocks_per_writer; ++b) {
      const std::size_t index =
          static_cast<std::size_t>(b) * writers + static_cast<std::size_t>(w);
      auto data = ldplfs::testing::random_bytes(
          block, (static_cast<std::uint64_t>(w) << 32) | b);
      std::memcpy(expected.data() + index * block, data.data(), block);
      auto n = fd.value()->write(data, index * block, 1000 + w);
      EXPECT_TRUE(n.ok());
      EXPECT_EQ(n.value(), block);
    }
  }
  for (int w = 0; w < writers; ++w) {
    EXPECT_TRUE(fd.value()->close(1000 + w).ok());
  }
  return expected;
}

class ReadParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IndexCache::shared().clear();
    DroppingFdCache::shared().invalidate("");
  }
  ldplfs::testing::TempDir dir_;
};

TEST_F(ReadParallelTest, ParallelMatchesExpectedByteExact) {
  const std::string path = dir_.sub("strided");
  const auto expected = build_strided(path, 8, 16, 4096);

  auto rf = ReadFile::open(path);
  ASSERT_TRUE(rf.ok());
  ASSERT_EQ(rf.value()->size(), expected.size());

  // Whole-file read (spans all 8 droppings → parallel path).
  std::vector<std::byte> out(expected.size());
  auto n = rf.value()->read(out, 0);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), expected.size());
  EXPECT_EQ(std::memcmp(out.data(), expected.data(), expected.size()), 0);

  // Random windows, including unaligned ones and short reads at EOF.
  Rng rng(99);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t off = rng.below(expected.size());
    const std::size_t len = 1 + rng.below(64 * 1024);
    std::vector<std::byte> window(len, std::byte{0xAA});
    auto got = rf.value()->read(window, off);
    ASSERT_TRUE(got.ok());
    const std::size_t want =
        std::min<std::size_t>(len, expected.size() - off);
    ASSERT_EQ(got.value(), want);
    EXPECT_EQ(std::memcmp(window.data(), expected.data() + off, want), 0)
        << "window at " << off << " len " << len;
  }
}

TEST_F(ReadParallelTest, SerialPathMatchesParallelPath) {
  const std::string path = dir_.sub("strided");
  const auto expected = build_strided(path, 6, 8, 4096);

  std::vector<std::byte> parallel(expected.size());
  {
    auto rf = ReadFile::open(path);
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(rf.value()->read(parallel, 0).ok());
  }
  std::vector<std::byte> serial(expected.size());
  {
    EnvGuard threads("LDPLFS_THREADS", "0");  // read at open time
    auto rf = ReadFile::open(path);
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(rf.value()->read(serial, 0).ok());
  }
  EXPECT_EQ(std::memcmp(parallel.data(), expected.data(), expected.size()), 0);
  EXPECT_EQ(std::memcmp(serial.data(), expected.data(), expected.size()), 0);
}

TEST_F(ReadParallelTest, HolesZeroFilledAcrossDroppings) {
  const std::string path = dir_.sub("sparse");
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  // Two writers, blocks with gaps: [0,4K) w1, hole, [8K,12K) w2, hole,
  // then a far block at 32K from w1.
  const auto a = ldplfs::testing::random_bytes(4096, 1);
  const auto b = ldplfs::testing::random_bytes(4096, 2);
  const auto c = ldplfs::testing::random_bytes(4096, 3);
  ASSERT_TRUE(fd.value()->write(a, 0, 2001).ok());
  ASSERT_TRUE(fd.value()->write(b, 8192, 2002).ok());
  ASSERT_TRUE(fd.value()->write(c, 32768, 2001).ok());
  ASSERT_TRUE(fd.value()->close(2001).ok());
  ASSERT_TRUE(fd.value()->close(2002).ok());

  auto rf = ReadFile::open(path);
  ASSERT_TRUE(rf.ok());
  std::vector<std::byte> out(36864, std::byte{0xFF});
  auto n = rf.value()->read(out, 0);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), out.size());
  EXPECT_EQ(std::memcmp(out.data(), a.data(), 4096), 0);
  EXPECT_EQ(std::memcmp(out.data() + 8192, b.data(), 4096), 0);
  EXPECT_EQ(std::memcmp(out.data() + 32768, c.data(), 4096), 0);
  for (std::size_t i = 4096; i < 8192; ++i) {
    ASSERT_EQ(out[i], std::byte{0}) << "hole byte " << i;
  }
  for (std::size_t i = 12288; i < 32768; i += 997) {
    ASSERT_EQ(out[i], std::byte{0}) << "hole byte " << i;
  }
}

TEST_F(ReadParallelTest, MissingDroppingFailsWholeRead) {
  const std::string path = dir_.sub("broken");
  build_strided(path, 4, 4, 4096);

  // Delete one data dropping out from under the index.
  auto droppings = find_data_droppings(path);
  ASSERT_TRUE(droppings.ok());
  ASSERT_EQ(droppings.value().size(), 4u);
  ASSERT_TRUE(posix::remove_file(droppings.value()[1]).ok());
  DroppingFdCache::shared().invalidate("");  // no cached fd resurrects it

  auto rf = ReadFile::open(path);
  ASSERT_TRUE(rf.ok());
  std::vector<std::byte> out(rf.value()->size());
  auto n = rf.value()->read(out, 0);
  ASSERT_FALSE(n.ok()) << "no partial credit past an error hole";
  EXPECT_EQ(n.error_code(), ENOENT);

  // Serial path reports the same failure.
  EnvGuard threads("LDPLFS_THREADS", "0");
  auto serial = ReadFile::open(path);
  ASSERT_TRUE(serial.ok());
  auto sn = serial.value()->read(out, 0);
  ASSERT_FALSE(sn.ok());
  EXPECT_EQ(sn.error_code(), ENOENT);
}

TEST_F(ReadParallelTest, IndexCacheHitsOnReopenAndSeesNewWrites) {
  const std::string path = dir_.sub("cached");
  build_strided(path, 4, 4, 4096);

  const auto before = IndexCache::shared().stats();
  {
    auto rf = ReadFile::open(path);
    ASSERT_TRUE(rf.ok());
  }
  const auto cold = IndexCache::shared().stats();
  EXPECT_EQ(cold.misses, before.misses + 1);
  {
    auto rf = ReadFile::open(path);
    ASSERT_TRUE(rf.ok());
  }
  const auto warm = IndexCache::shared().stats();
  EXPECT_EQ(warm.hits, cold.hits + 1);
  EXPECT_EQ(warm.misses, cold.misses);

  // Append through a new writer: the fingerprint (dropping count/size)
  // changes, so the next open must re-merge even without an explicit hook.
  auto fd = plfs_open(path, O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  const auto extra = ldplfs::testing::random_bytes(4096, 777);
  const std::uint64_t old_size = 4u * 4u * 4096u;
  ASSERT_TRUE(fd.value()->write(extra, old_size, 3000).ok());
  ASSERT_TRUE(fd.value()->close(3000).ok());

  auto rf = ReadFile::open(path);
  ASSERT_TRUE(rf.ok());
  ASSERT_EQ(rf.value()->size(), old_size + 4096);
  std::vector<std::byte> tail(4096);
  ASSERT_TRUE(rf.value()->read(tail, old_size).ok());
  EXPECT_EQ(std::memcmp(tail.data(), extra.data(), 4096), 0);
}

TEST_F(ReadParallelTest, IndexCacheInvalidatedByTruncRenameUnlink) {
  const std::string path = dir_.sub("mutated");
  build_strided(path, 2, 2, 4096);

  // Warm the cache, then truncate: size must update immediately.
  ASSERT_TRUE(ReadFile::open(path).ok());
  ASSERT_TRUE(plfs_trunc(path, 4096).ok());
  {
    auto rf = ReadFile::open(path);
    ASSERT_TRUE(rf.ok());
    EXPECT_EQ(rf.value()->size(), 4096u);
  }

  // Rename: old root's entry must not shadow the new location.
  const std::string moved = dir_.sub("moved");
  ASSERT_TRUE(plfs_rename(path, moved).ok());
  {
    auto rf = ReadFile::open(moved);
    ASSERT_TRUE(rf.ok());
    EXPECT_EQ(rf.value()->size(), 4096u);
  }
  EXPECT_FALSE(ReadFile::open(path).ok());

  // Unlink, then recreate smaller: no stale index may answer for the name.
  ASSERT_TRUE(plfs_unlink(moved).ok());
  auto fd = plfs_open(moved, O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  const auto tiny = ldplfs::testing::random_bytes(128, 5);
  ASSERT_TRUE(fd.value()->write(tiny, 0, 1).ok());
  ASSERT_TRUE(fd.value()->close(1).ok());
  auto rf = ReadFile::open(moved);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf.value()->size(), 128u);
}

TEST_F(ReadParallelTest, IndexCacheDisabledByEnv) {
  EnvGuard off("LDPLFS_INDEX_CACHE", "0");
  const std::string path = dir_.sub("nocache");
  const auto expected = build_strided(path, 3, 2, 4096);

  const auto before = IndexCache::shared().stats();
  auto rf = ReadFile::open(path);
  ASSERT_TRUE(rf.ok());
  auto rf2 = ReadFile::open(path);
  ASSERT_TRUE(rf2.ok());
  const auto after = IndexCache::shared().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);

  std::vector<std::byte> out(expected.size());
  ASSERT_TRUE(rf.value()->read(out, 0).ok());
  EXPECT_EQ(std::memcmp(out.data(), expected.data(), expected.size()), 0);
}

TEST_F(ReadParallelTest, FdCacheReusesAndEvictsLru) {
  // Local instance: deterministic cap without touching the shared cache.
  DroppingFdCache cache(4);
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) {
    paths.push_back(dir_.sub("file" + std::to_string(i)));
    ASSERT_TRUE(posix::write_file(paths.back(), "payload").ok());
  }

  auto first = cache.acquire(paths[0]);
  ASSERT_TRUE(first.ok());
  auto again = cache.acquire(paths[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value().get(), again.value().get()) << "hit reuses the fd";
  EXPECT_EQ(cache.stats().hits, 1u);

  for (int i = 1; i < 8; ++i) {
    ASSERT_TRUE(cache.acquire(paths[i]).ok());
  }
  EXPECT_LE(cache.open_count(), 4u) << "cap bounds tracked descriptors";
  EXPECT_GT(cache.stats().evictions, 0u);

  // paths[0] was evicted, but `first` still pins a working descriptor.
  char buf[7];
  ASSERT_EQ(::pread(first.value().get(), buf, sizeof buf, 0),
            static_cast<ssize_t>(sizeof buf));
  EXPECT_EQ(std::memcmp(buf, "payload", 7), 0);

  cache.invalidate(dir_.path());
  EXPECT_EQ(cache.open_count(), 0u);
}

TEST_F(ReadParallelTest, SharedFdCacheServesManyDroppingContainer) {
  // More droppings than a tiny cap: reads stay correct while the cache
  // recycles descriptors underneath.
  EnvGuard cap("LDPLFS_FD_CACHE", "8");  // shared() already sized; local ok
  const std::string path = dir_.sub("many");
  const auto expected = build_strided(path, 24, 2, 512);
  auto rf = ReadFile::open(path);
  ASSERT_TRUE(rf.ok());
  std::vector<std::byte> out(expected.size());
  auto n = rf.value()->read(out, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::memcmp(out.data(), expected.data(), expected.size()), 0);
}

TEST_F(ReadParallelTest, MultiThreadedReadersOneContainer) {
  const std::string path = dir_.sub("hammered");
  const auto expected = build_strided(path, 8, 8, 4096);

  auto fd = plfs_open(path, O_RDONLY, 1);
  ASSERT_TRUE(fd.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 40; ++i) {
        const std::uint64_t off = rng.below(expected.size());
        const std::size_t len = 1 + rng.below(32 * 1024);
        std::vector<std::byte> window(len);
        auto n = fd.value()->read(window, off);
        if (!n.ok()) {
          ++failures;
          continue;
        }
        const std::size_t want =
            std::min<std::size_t>(len, expected.size() - off);
        if (n.value() != want ||
            std::memcmp(window.data(), expected.data() + off, want) != 0) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace ldplfs::plfs
