#include "plfs/extent_map.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"

namespace ldplfs::plfs {
namespace {

Extent mk(std::uint64_t logical, std::uint64_t len, std::uint32_t drop,
          std::uint64_t phys) {
  return Extent{logical, len, drop, phys, 0};
}

TEST(ExtentMapTest, EmptyLookupIsAllHole) {
  ExtentMap map;
  const auto pieces = map.lookup(0, 100);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_TRUE(pieces[0].hole);
  EXPECT_EQ(pieces[0].logical, 0u);
  EXPECT_EQ(pieces[0].length, 100u);
  EXPECT_EQ(map.mapped_end(), 0u);
}

TEST(ExtentMapTest, ZeroLengthLookup) {
  ExtentMap map;
  map.insert(mk(0, 10, 0, 0));
  EXPECT_TRUE(map.lookup(5, 0).empty());
}

TEST(ExtentMapTest, ZeroLengthInsertIgnored) {
  ExtentMap map;
  map.insert(mk(5, 0, 0, 0));
  EXPECT_TRUE(map.empty());
}

TEST(ExtentMapTest, SingleExtentExactLookup) {
  ExtentMap map;
  map.insert(mk(100, 50, 3, 7));
  const auto pieces = map.lookup(100, 50);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_FALSE(pieces[0].hole);
  EXPECT_EQ(pieces[0].dropping, 3u);
  EXPECT_EQ(pieces[0].physical, 7u);
}

TEST(ExtentMapTest, LookupIntoMiddleShiftsPhysical) {
  ExtentMap map;
  map.insert(mk(100, 50, 0, 1000));
  const auto pieces = map.lookup(120, 10);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].physical, 1020u);
  EXPECT_EQ(pieces[0].length, 10u);
}

TEST(ExtentMapTest, HoleBetweenExtents) {
  ExtentMap map;
  map.insert(mk(0, 10, 0, 0));
  map.insert(mk(20, 10, 0, 10));
  const auto pieces = map.lookup(0, 30);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_FALSE(pieces[0].hole);
  EXPECT_TRUE(pieces[1].hole);
  EXPECT_EQ(pieces[1].logical, 10u);
  EXPECT_EQ(pieces[1].length, 10u);
  EXPECT_FALSE(pieces[2].hole);
}

TEST(ExtentMapTest, OverwriteSplitsOldExtent) {
  ExtentMap map;
  map.insert(mk(0, 100, 0, 0));     // old
  map.insert(mk(40, 20, 1, 500));   // new, middle overwrite
  EXPECT_TRUE(map.check_invariants());
  const auto pieces = map.lookup(0, 100);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].dropping, 0u);
  EXPECT_EQ(pieces[0].length, 40u);
  EXPECT_EQ(pieces[1].dropping, 1u);
  EXPECT_EQ(pieces[1].length, 20u);
  EXPECT_EQ(pieces[2].dropping, 0u);
  EXPECT_EQ(pieces[2].length, 40u);
  EXPECT_EQ(pieces[2].physical, 60u);  // shifted into the old dropping
}

TEST(ExtentMapTest, OverwriteCoversMultipleOldExtents) {
  ExtentMap map;
  map.insert(mk(0, 10, 0, 0));
  map.insert(mk(10, 10, 1, 0));
  map.insert(mk(20, 10, 2, 0));
  map.insert(mk(5, 20, 3, 100));  // spans parts of all three
  EXPECT_TRUE(map.check_invariants());
  const auto pieces = map.lookup(0, 30);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].dropping, 0u);
  EXPECT_EQ(pieces[0].length, 5u);
  EXPECT_EQ(pieces[1].dropping, 3u);
  EXPECT_EQ(pieces[1].length, 20u);
  EXPECT_EQ(pieces[2].dropping, 2u);
  EXPECT_EQ(pieces[2].length, 5u);
  EXPECT_EQ(pieces[2].physical, 5u);
}

TEST(ExtentMapTest, ExactReplacement) {
  ExtentMap map;
  map.insert(mk(10, 10, 0, 0));
  map.insert(mk(10, 10, 1, 99));
  const auto pieces = map.lookup(10, 10);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].dropping, 1u);
  EXPECT_EQ(map.extent_count(), 1u);
}

TEST(ExtentMapTest, TruncateCutsStraddlingExtent) {
  ExtentMap map;
  map.insert(mk(0, 100, 0, 0));
  map.truncate(60);
  EXPECT_EQ(map.mapped_end(), 60u);
  EXPECT_TRUE(map.check_invariants());
  map.truncate(0);
  EXPECT_TRUE(map.empty());
}

TEST(ExtentMapTest, TruncateDropsWholeExtentsBeyond) {
  ExtentMap map;
  map.insert(mk(0, 10, 0, 0));
  map.insert(mk(50, 10, 1, 0));
  map.truncate(30);
  EXPECT_EQ(map.extent_count(), 1u);
  EXPECT_EQ(map.mapped_end(), 10u);
}

TEST(ExtentMapTest, TruncateAtExactBoundaryKeepsExtent) {
  ExtentMap map;
  map.insert(mk(0, 10, 0, 0));
  map.truncate(10);
  EXPECT_EQ(map.extent_count(), 1u);
  EXPECT_EQ(map.mapped_end(), 10u);
}

// ---------------------------------------------------------------------------
// Property test: a random sequence of overwrites and truncates must behave
// exactly like writes into a flat byte array. The reference tags each byte
// with the id of the write that produced it.
// ---------------------------------------------------------------------------

class ExtentMapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtentMapPropertyTest, MatchesFlatArrayReference) {
  constexpr std::uint64_t kFileSize = 4096;
  Rng rng(GetParam());
  ExtentMap map;
  // reference[i] = id of the write owning byte i, or -1 for hole.
  std::vector<long> reference(kFileSize, -1);
  std::uint64_t ref_size = 0;

  // Track, per write id, logical start + physical start so we can verify
  // physical offsets in lookups too.
  struct WriteInfo {
    std::uint64_t logical, physical;
  };
  std::vector<WriteInfo> writes;
  std::uint64_t physical_cursor = 0;

  for (int op = 0; op < 400; ++op) {
    if (rng.below(10) == 0) {
      const std::uint64_t size = rng.below(kFileSize);
      map.truncate(size);
      for (std::uint64_t i = size; i < kFileSize; ++i) reference[i] = -1;
      ref_size = std::min(ref_size, size);
      continue;
    }
    const std::uint64_t off = rng.below(kFileSize - 1);
    const std::uint64_t len = 1 + rng.below(std::min<std::uint64_t>(
                                      kFileSize - off, 256));
    const long id = static_cast<long>(writes.size());
    writes.push_back({off, physical_cursor});
    map.insert(Extent{off, len, 0, physical_cursor,
                      static_cast<std::uint64_t>(id)});
    physical_cursor += len;
    for (std::uint64_t i = off; i < off + len; ++i) reference[i] = id;
    ref_size = std::max(ref_size, off + len);

    ASSERT_TRUE(map.check_invariants()) << "op " << op;
  }

  // Whole-file lookup must reproduce the reference byte-for-byte.
  const auto pieces = map.lookup(0, kFileSize);
  std::uint64_t cursor = 0;
  for (const auto& piece : pieces) {
    ASSERT_EQ(piece.logical, cursor);
    for (std::uint64_t i = piece.logical; i < piece.logical + piece.length;
         ++i) {
      if (piece.hole) {
        ASSERT_EQ(reference[i], -1) << "byte " << i;
      } else {
        ASSERT_GE(reference[i], 0) << "byte " << i;
        const auto& info = writes[static_cast<std::size_t>(reference[i])];
        // physical of byte i = write's physical + (i - piece start within
        // that write). piece.physical corresponds to piece.logical.
        ASSERT_EQ(piece.physical + (i - piece.logical),
                  info.physical + (i - info.logical))
            << "byte " << i;
      }
    }
    cursor += piece.length;
  }
  ASSERT_EQ(cursor, kFileSize);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentMapPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace ldplfs::plfs
