// Write-behind engine suite: the aggregated, double-buffered async append
// path (see write_file.hpp).
//
// The heart is a randomized oracle test: the same fixed-seed op sequence
// (strided writes, truncates, syncs, read checkpoints) runs once under the
// write-behind engine and once under the synchronous engine, each checked
// against an in-memory byte model at every checkpoint. The two containers
// must then agree byte-for-byte — identical data-dropping contents and
// identical index records modulo timestamps — which pins the engines to the
// same log-structured layout, not merely the same logical contents.
//
// The fault tests pin the deferred-error half of the contract: a background
// flush failure on a pool thread poisons the stream, the original errno
// resurfaces from the next write/sync/close, and no index record ever
// describes bytes the failed flush did not land.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "plfs/container.hpp"
#include "plfs/index_format.hpp"
#include "plfs/plfs.hpp"
#include "plfs/recovery.hpp"
#include "plfs/write_file.hpp"
#include "posix/faults.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

constexpr pid_t kPid = 9;
constexpr std::size_t kChunk = 1024;

char chunk_fill(std::size_t index) {
  return static_cast<char>('A' + static_cast<char>(index));
}

class WriteBehindTest : public ::testing::Test {
 protected:
  void SetUp() override { posix::faults::clear(); }
  void TearDown() override {
    posix::faults::clear();
    ::unsetenv("LDPLFS_WRITE_BEHIND");
    ::unsetenv("LDPLFS_WRITE_BUFFER");
    ::unsetenv("LDPLFS_COALESCE");
  }
  TempDir tmp_;
};

TEST_F(WriteBehindTest, EnvKnobs) {
  ::unsetenv("LDPLFS_WRITE_BEHIND");
  EXPECT_TRUE(WriteFile::env_write_behind());  // on by default
  ::setenv("LDPLFS_WRITE_BEHIND", "0", 1);
  EXPECT_FALSE(WriteFile::env_write_behind());
  ::setenv("LDPLFS_WRITE_BEHIND", "1", 1);
  EXPECT_TRUE(WriteFile::env_write_behind());

  ::unsetenv("LDPLFS_WRITE_BUFFER");
  EXPECT_EQ(WriteFile::env_write_buffer(), std::size_t{4} << 20);
  ::setenv("LDPLFS_WRITE_BUFFER", "8K", 1);
  EXPECT_EQ(WriteFile::env_write_buffer(), std::size_t{8} << 10);
  ::setenv("LDPLFS_WRITE_BUFFER", "1", 1);  // clamped to the 4 KiB floor
  EXPECT_EQ(WriteFile::env_write_buffer(), std::size_t{4} << 10);
  ::setenv("LDPLFS_WRITE_BUFFER", "1G", 1);  // clamped to the 256 MiB cap
  EXPECT_EQ(WriteFile::env_write_buffer(), std::size_t{256} << 20);
  ::setenv("LDPLFS_WRITE_BUFFER", "banana", 1);  // malformed: default
  EXPECT_EQ(WriteFile::env_write_buffer(), std::size_t{4} << 20);
}

/// What one oracle run leaves behind, for cross-engine comparison.
struct WorkloadResult {
  std::vector<char> model;        // final oracle contents
  std::string dropping_bytes;     // raw data-dropping contents
  std::vector<IndexRecord> records;  // on-disk index records
};

/// Run the fixed-seed random workload against one container and the byte
/// model, checking read-your-writes at every checkpoint. The 4 KiB buffer
/// forces many double-buffer rotations; occasional oversized writes take
/// the buffer-dodging path.
WorkloadResult run_workload(const TempDir& tmp, const char* name,
                            bool write_behind, bool coalesce = false) {
  ::setenv("LDPLFS_WRITE_BEHIND", write_behind ? "1" : "0", 1);
  ::setenv("LDPLFS_WRITE_BUFFER", "4096", 1);
  // Off by default here: the byte-identical oracle below compares the
  // write-behind log against the synchronous engine's, and coalescing
  // legitimately drops dead overwrite bytes from the former.
  ::setenv("LDPLFS_COALESCE", coalesce ? "1" : "0", 1);
  WorkloadResult result;
  const std::string path = tmp.sub(name);
  auto fd = plfs_open(path, O_CREAT | O_RDWR, kPid);
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) return result;

  std::vector<char>& model = result.model;
  const auto checkpoint = [&](int op) {
    auto size = fd.value()->size();
    ASSERT_TRUE(size.ok()) << "op " << op;
    EXPECT_EQ(size.value(), model.size()) << "op " << op;
    std::vector<std::byte> buf(model.size());
    auto got = plfs_read(*fd.value(), buf, 0);
    ASSERT_TRUE(got.ok()) << "op " << op;
    ASSERT_EQ(got.value(), model.size()) << "op " << op;
    if (!model.empty()) {
      EXPECT_EQ(std::memcmp(buf.data(), model.data(), model.size()), 0)
          << "op " << op;
    }
  };

  Rng rng(0xFEEDFACEu);  // same seed for both engines → identical ops
  for (int op = 0; op < 240; ++op) {
    const std::uint64_t kind = rng.below(10);
    if (kind < 7) {
      const std::uint64_t off = rng.below(48 * 1024);
      // Mostly sub-buffer writes; every 31st is oversized (> 4 KiB buffer)
      // to exercise the drain-then-write-through dodge.
      const std::size_t len =
          1 + static_cast<std::size_t>(rng.below(op % 31 == 0 ? 6000 : 3000));
      std::string data(len, '\0');
      for (auto& c : data) {
        c = static_cast<char>('a' + static_cast<char>(rng.below(26)));
      }
      auto n = fd.value()->write(as_bytes(data), off, kPid);
      EXPECT_TRUE(n.ok()) << "op " << op;
      if (model.size() < off + len) model.resize(off + len, '\0');
      std::copy(data.begin(), data.end(),
                model.begin() + static_cast<std::ptrdiff_t>(off));
    } else if (kind == 7) {
      // Truncate, mostly down but sometimes past EOF (hole at the tail).
      const std::uint64_t size = rng.below(model.size() + model.size() / 4 + 1);
      EXPECT_TRUE(fd.value()->truncate(size, kPid).ok()) << "op " << op;
      model.resize(size, '\0');
    } else if (kind == 8) {
      EXPECT_TRUE(plfs_sync(*fd.value(), kPid).ok()) << "op " << op;
    } else {
      checkpoint(op);
      if (::testing::Test::HasFatalFailure()) return result;
    }
  }
  checkpoint(-1);
  EXPECT_TRUE(plfs_close(fd.value(), kPid).ok());

  // The closed container must agree with the oracle from a cold start too.
  auto attr = plfs_getattr(path);
  EXPECT_TRUE(attr.ok());
  if (attr.ok()) EXPECT_EQ(attr.value().size, model.size());
  auto rfd = plfs_open(path, O_RDONLY, kPid + 1);
  EXPECT_TRUE(rfd.ok());
  if (rfd.ok()) {
    std::vector<std::byte> buf(model.size());
    auto got = plfs_read(*rfd.value(), buf, 0);
    EXPECT_TRUE(got.ok());
    if (got.ok() && !model.empty()) {
      EXPECT_EQ(got.value(), model.size());
      EXPECT_EQ(std::memcmp(buf.data(), model.data(), model.size()), 0);
    }
    EXPECT_TRUE(plfs_close(rfd.value(), kPid + 1).ok());
  }

  auto data_paths = find_data_droppings(path);
  EXPECT_TRUE(data_paths.ok());
  if (data_paths.ok()) {
    EXPECT_EQ(data_paths.value().size(), 1u);  // one writer, one log
    if (!data_paths.value().empty()) {
      auto bytes = posix::read_file(data_paths.value().front());
      EXPECT_TRUE(bytes.ok());
      if (bytes.ok()) result.dropping_bytes = std::move(bytes).value();
    }
  }
  auto index_paths = find_index_droppings(path);
  EXPECT_TRUE(index_paths.ok());
  if (index_paths.ok() && index_paths.value().size() == 1) {
    auto dropping = load_index_dropping(index_paths.value().front());
    EXPECT_TRUE(dropping.ok());
    if (dropping.ok()) result.records = std::move(dropping).value().records;
  }
  return result;
}

TEST_F(WriteBehindTest, RandomizedOracleBothEnginesAgree) {
  auto wb = run_workload(tmp_, "wb", /*write_behind=*/true);
  auto sync = run_workload(tmp_, "sync", /*write_behind=*/false);
  if (HasFatalFailure()) return;

  // Identical logical contents (both already matched the model, but compare
  // directly so a shared-oracle bug cannot hide a divergence).
  EXPECT_TRUE(wb.model == sync.model);

  // Byte-identical physical log: every write lands at the tail in arrival
  // order under both engines, so aggregation must not reorder or pad.
  EXPECT_EQ(wb.dropping_bytes.size(), sync.dropping_bytes.size());
  EXPECT_TRUE(wb.dropping_bytes == sync.dropping_bytes)
      << "aggregation changed the physical log layout";

  // Identical index records modulo timestamps: staging records per buffer
  // and merging them after the flush must coalesce exactly like the
  // synchronous engine's inline add_write path (flush boundaries — syncs
  // and read checkpoints — are the same in both runs).
  ASSERT_EQ(wb.records.size(), sync.records.size());
  for (std::size_t i = 0; i < wb.records.size(); ++i) {
    EXPECT_EQ(wb.records[i].logical_offset, sync.records[i].logical_offset)
        << "record " << i;
    EXPECT_EQ(wb.records[i].length, sync.records[i].length) << "record " << i;
    EXPECT_EQ(wb.records[i].physical_offset, sync.records[i].physical_offset)
        << "record " << i;
    EXPECT_EQ(wb.records[i].kind, sync.records[i].kind) << "record " << i;
  }
}

TEST_F(WriteBehindTest, RandomizedOracleCoalescingPreservesContents) {
  // Same op stream with flush-time coalescing enabled: the physical log may
  // differ (dead overwrite bytes dropped, adjacent runs merged), but every
  // in-workload checkpoint, the cold-start re-read, and the final model must
  // still agree with the uncoalesced engines — and the log must only have
  // gotten smaller.
  stats::force_enable(true);
  const auto before = stats::snapshot();
  auto coalesced = run_workload(tmp_, "wbc", /*write_behind=*/true,
                                /*coalesce=*/true);
  auto sync = run_workload(tmp_, "syncref", /*write_behind=*/false);
  if (HasFatalFailure()) return;

  EXPECT_TRUE(coalesced.model == sync.model);
  EXPECT_LE(coalesced.dropping_bytes.size(), sync.dropping_bytes.size());
  EXPECT_LE(coalesced.records.size(), sync.records.size());

  // The overwrite-heavy op mix must actually exercise the rewrite path.
  const auto delta = stats::snapshot().since(before);
  EXPECT_GT(delta.get(stats::Counter::kWbCoalesceMerged), 0u);
}

TEST_F(WriteBehindTest, ReadYourWritesWithoutSync) {
  // Default 4 MiB buffer: nothing below forces a flush, so the data lives
  // purely in the aggregation buffer until the reader's drain barrier.
  ::setenv("LDPLFS_WRITE_BEHIND", "1", 1);
  const std::string path = tmp_.sub("ryw");
  auto fd = plfs_open(path, O_CREAT | O_RDWR, kPid);
  ASSERT_TRUE(fd.ok());
  std::string expect;
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string chunk(kChunk, chunk_fill(i));
    ASSERT_TRUE(fd.value()->write(as_bytes(chunk), i * kChunk, kPid).ok());
    expect += chunk;
  }

  auto size = fd.value()->size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 3 * kChunk);
  std::vector<std::byte> buf(3 * kChunk);
  auto got = plfs_read(*fd.value(), buf, 0);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value(), 3 * kChunk);
  EXPECT_EQ(std::memcmp(buf.data(), expect.data(), expect.size()), 0);

  // Truncate is a drain barrier too; the clipped view must be immediate.
  ASSERT_TRUE(fd.value()->truncate(1500, kPid).ok());
  size = fd.value()->size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 1500u);

  ASSERT_TRUE(plfs_close(fd.value(), kPid).ok());
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 1500u);
}

TEST_F(WriteBehindTest, BackgroundFlushFailurePoisonsStream) {
  ::setenv("LDPLFS_WRITE_BEHIND", "1", 1);
  ::setenv("LDPLFS_WRITE_BUFFER", "4096", 1);
  const std::string path = tmp_.sub("poison");
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kPid);
  ASSERT_TRUE(fd.ok());

  // count=1: only the background flush's pwrite fails; everything after is
  // the stream's sticky deferred error, with the ORIGINAL errno.
  ASSERT_TRUE(posix::faults::configure("pwrite:errno=ENOSPC:count=1"));
  const std::string chunk(kChunk, 'x');
  for (std::size_t i = 0; i < 5; ++i) {
    // The 5th write rotates the buffer and submits the doomed flush. The
    // writes themselves are acknowledged (write-back semantics) unless the
    // non-blocking poll already saw the failure land.
    auto n = fd.value()->write(as_bytes(chunk), i * kChunk, kPid);
    if (!n.ok()) EXPECT_EQ(n.error_code(), ENOSPC);
  }

  // sync joins the flush: the failure MUST surface here at the latest...
  EXPECT_EQ(plfs_sync(*fd.value(), kPid).error_code(), ENOSPC);
  // ...and every later operation keeps reporting the original errno.
  EXPECT_EQ(fd.value()->write(as_bytes(chunk), 5 * kChunk, kPid).error_code(),
            ENOSPC);
  EXPECT_EQ(fd.value()->truncate(0, kPid).error_code(), ENOSPC);
  EXPECT_EQ(plfs_close(fd.value(), kPid).error_code(), ENOSPC);

  // Nothing was ever indexed: the flush that failed carried the first four
  // chunks, and the fifth was dropped with the poisoned stream.
  posix::faults::clear();
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().logical_size, 0u);
}

TEST_F(WriteBehindTest, AcknowledgedPrefixSurvivesLaterFlushFailure) {
  ::setenv("LDPLFS_WRITE_BEHIND", "1", 1);
  ::setenv("LDPLFS_WRITE_BUFFER", "4096", 1);
  const std::string path = tmp_.sub("prefix");
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kPid);
  ASSERT_TRUE(fd.ok());

  // First flush (chunks 0-3) succeeds; second flush (chunks 4-7) hits EIO
  // on the pool thread; chunks 8-11 are still buffered when the poison
  // lands and must be dropped with it — no record past the torn tail.
  ASSERT_TRUE(posix::faults::configure("pwrite:after=1:errno=EIO"));
  for (std::size_t i = 0; i < 12; ++i) {
    const std::string chunk(kChunk, chunk_fill(i));
    auto n = fd.value()->write(as_bytes(chunk), i * kChunk, kPid);
    if (!n.ok()) EXPECT_EQ(n.error_code(), EIO);
  }
  EXPECT_EQ(plfs_sync(*fd.value(), kPid).error_code(), EIO);
  EXPECT_EQ(plfs_close(fd.value(), kPid).error_code(), EIO);

  // Only the first buffer — whose pwrite completed before the failure —
  // may be visible after recovery.
  posix::faults::clear();
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().logical_size, 4 * kChunk);
  auto rfd = plfs_open(path, O_RDONLY, 1);
  ASSERT_TRUE(rfd.ok());
  std::vector<std::byte> buf(4 * kChunk);
  auto got = plfs_read(*rfd.value(), buf, 0);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value(), 4 * kChunk);
  for (std::uint64_t off = 0; off < 4 * kChunk; ++off) {
    ASSERT_EQ(static_cast<char>(buf[off]), chunk_fill(off / kChunk))
        << "byte " << off;
  }
  ASSERT_TRUE(plfs_close(rfd.value(), 1).ok());
}

}  // namespace
}  // namespace ldplfs::plfs
