#include "plfs/compaction.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;
using ldplfs::testing::random_bytes;

std::string read_whole(const std::string& path, std::size_t limit = 1 << 20) {
  auto fd = plfs_open(path, O_RDONLY, 999);
  EXPECT_TRUE(fd.ok());
  std::string out(limit, '\0');
  auto n = fd.value()->read(
      {reinterpret_cast<std::byte*>(out.data()), out.size()}, 0);
  EXPECT_TRUE(n.ok());
  out.resize(n.ok() ? n.value() : 0);
  return out;
}

TEST(CompactionTest, MissingContainerFails) {
  TempDir tmp;
  auto result = plfs_compact(tmp.sub("none"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error_code(), ENOENT);
}

TEST(CompactionTest, OpenWriterBlocksCompaction) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("x"), 0, 5).ok());
  auto result = plfs_compact(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error_code(), EBUSY);
  ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  EXPECT_TRUE(plfs_compact(path).ok());
}

TEST(CompactionTest, OverwriteHeavyLogShrinks) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    // Flush-time coalescing would drop the dead overwrites before they
    // ever reach the log; force it off so the garbage this test compacts
    // actually exists on disk.
    ::setenv("LDPLFS_COALESCE", "0", 1);
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    // Write the same 1 KiB region 50 times: 50 KiB of log, 1 KiB live.
    for (int i = 0; i < 50; ++i) {
      std::string block(1024, static_cast<char>('A' + (i % 26)));
      ASSERT_TRUE(fd.value()->write(as_bytes(block), 0, 5).ok());
    }
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
    ::unsetenv("LDPLFS_COALESCE");
  }
  const std::string before = read_whole(path);

  auto stats = plfs_compact(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().live_bytes, 1024u);
  EXPECT_GE(stats.value().reclaimed_bytes, 49u * 1024u);
  EXPECT_EQ(stats.value().droppings_after, 1u);

  EXPECT_EQ(read_whole(path), before);
  auto droppings = find_data_droppings(path);
  ASSERT_TRUE(droppings.ok());
  EXPECT_EQ(droppings.value().size(), 1u);
}

TEST(CompactionTest, MultiWriterContainerCollapsesToOneDropping) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 1);
    ASSERT_TRUE(fd.ok());
    for (int w = 0; w < 6; ++w) {
      std::string block(500, static_cast<char>('a' + w));
      ASSERT_TRUE(fd.value()->write(as_bytes(block), w * 500, 100 + w).ok());
    }
    for (int w = 0; w < 6; ++w) {
      ASSERT_TRUE(fd.value()->close(100 + w).ok());
    }
  }
  const std::string before = read_whole(path);
  ASSERT_EQ(before.size(), 3000u);

  auto stats = plfs_compact(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().droppings_before, 6u);
  EXPECT_EQ(stats.value().droppings_after, 1u);
  EXPECT_EQ(stats.value().live_bytes, 3000u);
  EXPECT_EQ(read_whole(path), before);
}

TEST(CompactionTest, SparseFileKeepsHoles) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("head"), 0, 5).ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("tail"), 1000, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  const std::string before = read_whole(path);
  auto stats = plfs_compact(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().live_bytes, 8u);  // only mapped bytes copied
  const std::string after = read_whole(path);
  EXPECT_EQ(after, before);
  EXPECT_EQ(after.size(), 1004u);
}

TEST(CompactionTest, TruncateUpTailSurvives) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_RDWR, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("ab"), 0, 5).ok());
    ASSERT_TRUE(fd.value()->truncate(100, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  ASSERT_TRUE(plfs_compact(path).ok());
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 100u);
  const std::string content = read_whole(path);
  ASSERT_EQ(content.size(), 100u);
  EXPECT_EQ(content.substr(0, 2), "ab");
  EXPECT_EQ(content[99], '\0');
}

TEST(CompactionTest, EmptyContainerCompacts) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  { auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5); ASSERT_TRUE(fd.ok()); }
  auto stats = plfs_compact(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().live_bytes, 0u);
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 0u);
}

TEST(CompactionTest, GetattrFastPathAfterCompaction) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  ASSERT_TRUE(plfs_compact(path).ok());
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 10u);
  EXPECT_TRUE(attr.value().from_hints);  // compaction refreshed the hint
}

class CompactionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CompactionPropertyTest, ContentIdenticalAfterCompaction) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  Rng rng(GetParam() * 31 + 5);
  {
    auto fd = plfs_open(path, O_CREAT | O_RDWR, 1);
    ASSERT_TRUE(fd.ok());
    const int writers = 1 + static_cast<int>(rng.below(3));
    for (int op = 0; op < 60; ++op) {
      const auto data = random_bytes(1 + rng.below(2000), rng.next());
      ASSERT_TRUE(fd.value()
                      ->write(data, rng.below(32 * 1024),
                              static_cast<pid_t>(1 + rng.below(writers)))
                      .ok());
      if (rng.below(10) == 0) {
        ASSERT_TRUE(fd.value()->truncate(rng.below(32 * 1024), 1).ok());
      }
    }
    for (int w = 1; w <= writers; ++w) {
      ASSERT_TRUE(fd.value()->close(static_cast<pid_t>(w)).ok());
    }
  }
  const std::string before = read_whole(path);
  auto stats = plfs_compact(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(read_whole(path), before);
  // Compaction is idempotent.
  auto again = plfs_compact(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().reclaimed_bytes, 0u);
  EXPECT_EQ(read_whole(path), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace ldplfs::plfs
