#include "plfs/container.hpp"

#include <gtest/gtest.h>

#include "common/paths.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

TEST(ContainerLayoutTest, PathsAreUnderRoot) {
  ContainerLayout layout("/backend/file");
  EXPECT_EQ(layout.access_path(), "/backend/file/access");
  EXPECT_EQ(layout.creator_path(), "/backend/file/creator");
  EXPECT_EQ(layout.openhosts_path(), "/backend/file/openhosts");
  EXPECT_EQ(layout.metadata_path(), "/backend/file/metadata");
}

TEST(ContainerLayoutTest, HostdirBucketStable) {
  ContainerLayout layout("/b/f", 32);
  const unsigned bucket = layout.hostdir_bucket("node01");
  EXPECT_LT(bucket, 32u);
  EXPECT_EQ(bucket, layout.hostdir_bucket("node01"));
  EXPECT_EQ(layout.hostdir_for("node01"),
            layout.hostdir_path(bucket));
}

TEST(ContainerLayoutTest, ZeroHostdirsClampedToOne) {
  ContainerLayout layout("/b/f", 0);
  EXPECT_EQ(layout.hostdir_count(), 1u);
  EXPECT_EQ(layout.hostdir_bucket("anything"), 0u);
}

TEST(ContainerLayoutTest, DroppingNamesEncodeWriter) {
  WriterId writer{"node01", 4242, 987654321};
  const auto data = ContainerLayout::data_dropping_name(writer);
  const auto index = ContainerLayout::index_dropping_name(writer);
  EXPECT_EQ(data, "dropping.data.987654321.node01.4242");
  EXPECT_EQ(index, "dropping.index.987654321.node01.4242");
}

TEST(MetaHintTest, NameRoundTrip) {
  MetaHint hint{1234567, 89, "node.with.dots", 55};
  const std::string name = ContainerLayout::meta_name(hint);
  MetaHint parsed;
  ASSERT_TRUE(ContainerLayout::parse_meta_name(name, parsed));
  EXPECT_EQ(parsed.eof, hint.eof);
  EXPECT_EQ(parsed.bytes, hint.bytes);
  EXPECT_EQ(parsed.host, hint.host);
  EXPECT_EQ(parsed.pid, hint.pid);
}

TEST(MetaHintTest, RejectsForeignNames) {
  MetaHint out;
  EXPECT_FALSE(ContainerLayout::parse_meta_name("random.file", out));
  EXPECT_FALSE(ContainerLayout::parse_meta_name("meta.x.y.host.1", out));
  EXPECT_FALSE(ContainerLayout::parse_meta_name("", out));
  EXPECT_FALSE(ContainerLayout::parse_meta_name("meta.1.2", out));
}

TEST(ContainerLifecycleTest, CreateDetectRemove) {
  testing::TempDir tmp;
  const std::string path = tmp.sub("file1");
  EXPECT_FALSE(is_container(path));
  ASSERT_TRUE(create_container(path, 0640, "host", 1).ok());
  EXPECT_TRUE(is_container(path));
  EXPECT_TRUE(posix::is_directory(path));
  EXPECT_TRUE(posix::exists(path_join(path, kAccessFile)));
  EXPECT_TRUE(posix::is_directory(path_join(path, kOpenHostsDir)));
  EXPECT_TRUE(posix::is_directory(path_join(path, kMetadataDir)));

  ASSERT_TRUE(remove_container(path).ok());
  EXPECT_FALSE(posix::exists(path));
}

TEST(ContainerLifecycleTest, CreateOnExistingFails) {
  testing::TempDir tmp;
  const std::string path = tmp.sub("file1");
  ASSERT_TRUE(create_container(path, 0644, "host", 1).ok());
  auto again = create_container(path, 0644, "host", 1);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.error_code(), EEXIST);
}

TEST(ContainerLifecycleTest, PlainDirIsNotContainer) {
  testing::TempDir tmp;
  ASSERT_TRUE(posix::make_dir(tmp.sub("plain")).ok());
  EXPECT_FALSE(is_container(tmp.sub("plain")));
  auto rm = remove_container(tmp.sub("plain"));
  EXPECT_FALSE(rm.ok());
  EXPECT_EQ(rm.error_code(), ENOENT);
}

TEST(ContainerDroppingScanTest, FindsAcrossHostdirs) {
  testing::TempDir tmp;
  const std::string path = tmp.sub("file1");
  ASSERT_TRUE(create_container(path, 0644, "host", 1).ok());
  ContainerLayout layout(path);
  // Two writers hashing to (possibly) different hostdirs.
  for (const char* host : {"alpha", "beta"}) {
    WriterId writer{host, 1, 100};
    ASSERT_TRUE(posix::make_dirs(layout.hostdir_for(host)).ok());
    ASSERT_TRUE(
        posix::write_file(layout.data_dropping_path(writer), "x").ok());
    ASSERT_TRUE(
        posix::write_file(layout.index_dropping_path(writer), "y").ok());
  }
  auto data = find_data_droppings(path);
  auto index = find_index_droppings(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(data.value().size(), 2u);
  EXPECT_EQ(index.value().size(), 2u);
}

TEST(MetaHintScanTest, ReadsHintsSkipsForeign) {
  testing::TempDir tmp;
  const std::string path = tmp.sub("file1");
  ASSERT_TRUE(create_container(path, 0644, "host", 1).ok());
  ContainerLayout layout(path);
  MetaHint hint{500, 600, "h", 2};
  ASSERT_TRUE(posix::write_file(
                  path_join(layout.metadata_path(),
                            ContainerLayout::meta_name(hint)), "")
                  .ok());
  ASSERT_TRUE(posix::write_file(path_join(layout.metadata_path(), "junk"), "")
                  .ok());
  auto hints = read_meta_hints(path);
  ASSERT_TRUE(hints.ok());
  ASSERT_EQ(hints.value().size(), 1u);
  EXPECT_EQ(hints.value()[0].eof, 500u);
}

TEST(TimestampTest, StrictlyIncreasing) {
  std::uint64_t prev = next_timestamp();
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t now = next_timestamp();
    ASSERT_GT(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace ldplfs::plfs
