// Fork-based multi-process soak for the shared metadata plane: N children
// write disjoint regions of ONE container while the parent keeps a warm
// IndexCache; rounds inject LDPLFS_FAULTS crash plans into a child and
// SIGKILL a registered writer outright. The invariants under test:
//
//   * no stale-generation reads — after every round the parent (whose cache
//     was warmed the round before) must see exactly the bytes the surviving
//     children wrote, without dropping its caches by hand;
//   * byte-identical recovery — plfs_recover after a crashed/killed writer
//     leaves every completed region intact, and the crashed writer's region
//     only ever holds old-round or new-round bytes (no third value);
//   * the segment survives kill -9 of a registrant — writer slots are
//     reclaimed and registration/bumps/opens keep working.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "plfs/plfs.hpp"
#include "plfs/recovery.hpp"
#include "plfs/shared_meta.hpp"
#include "posix/faults.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;

constexpr int kWriters = 4;
constexpr std::size_t kChunk = 4096;
constexpr std::size_t kChunksPerRegion = 4;
constexpr std::size_t kRegion = kChunk * kChunksPerRegion;
constexpr std::size_t kFileSize = kRegion * kWriters;

char fill_of(int writer, int round) {
  return static_cast<char>('A' + writer * 4 + round);
}

class MultiprocSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    name_ = "/ldplfs.soak." + std::to_string(::getpid()) + "." +
            std::to_string(counter++);
    ::setenv("LDPLFS_SHM", name_.c_str(), 1);
    ::unsetenv("LDPLFS_FAULTS");
    posix::faults::clear();
    shmeta::reattach_for_testing();
    ASSERT_TRUE(shmeta::active());
  }

  void TearDown() override {
    posix::faults::clear();
    ::unsetenv("LDPLFS_FAULTS");
    shmeta::unlink_segment();
    ::unsetenv("LDPLFS_SHM");
    shmeta::reattach_for_testing();
  }

  /// Child body: write this writer's region chunk by chunk, syncing after
  /// each chunk so every index record describes completed data. When the
  /// parent toggled LDPLFS_FAULTS before the fork, install that plan first
  /// (fork copies the parent's already-latched empty plan, so the child
  /// must re-read the environment itself).
  [[noreturn]] static void run_writer(const std::string& path, int writer,
                                      int round) {
    const char* spec = std::getenv("LDPLFS_FAULTS");
    posix::faults::clear();
    if (spec != nullptr && *spec != '\0' &&
        !posix::faults::configure(spec)) {
      ::_exit(2);
    }
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, ::getpid());
    if (!fd.ok()) ::_exit(3);
    const std::uint64_t base = static_cast<std::uint64_t>(writer) * kRegion;
    const std::string chunk(kChunk, fill_of(writer, round));
    for (std::size_t i = 0; i < kChunksPerRegion; ++i) {
      const auto data = testing::as_bytes(chunk);
      if (!fd.value()->write(data, base + i * kChunk, ::getpid()).ok()) {
        ::_exit(4);
      }
      if (!plfs_sync(*fd.value(), ::getpid()).ok()) ::_exit(5);
    }
    if (!plfs_close(fd.value(), ::getpid()).ok()) ::_exit(6);
    ::_exit(0);
  }

  /// Fork the full crew for one round; `doomed` (if >= 0) runs under the
  /// LDPLFS_FAULTS plan the parent set. Returns each child's exit code
  /// (137 = injected crash).
  std::vector<int> run_round(const std::string& path, int round, int doomed,
                             const std::string& fault_spec) {
    std::vector<pid_t> pids(kWriters, -1);
    for (int w = 0; w < kWriters; ++w) {
      if (w == doomed) {
        ::setenv("LDPLFS_FAULTS", fault_spec.c_str(), 1);
      } else {
        ::unsetenv("LDPLFS_FAULTS");
      }
      const pid_t pid = ::fork();
      if (pid == 0) run_writer(path, w, round);
      EXPECT_GT(pid, 0);
      pids[w] = pid;
    }
    ::unsetenv("LDPLFS_FAULTS");
    std::vector<int> codes(kWriters, -1);
    for (int w = 0; w < kWriters; ++w) {
      if (pids[w] <= 0) continue;
      int status = 0;
      EXPECT_EQ(::waitpid(pids[w], &status, 0), pids[w]);
      if (WIFEXITED(status)) codes[w] = WEXITSTATUS(status);
    }
    return codes;
  }

  /// Read the whole logical file through a fresh handle (the parent's warm
  /// caches validate against the shared generation, never a manual drop).
  std::string read_file(const std::string& path) {
    auto fd = plfs_open(path, O_RDONLY, ::getpid());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) return {};
    std::string out(kFileSize, '\0');
    auto n = fd.value()->read(
        std::span<std::byte>(reinterpret_cast<std::byte*>(out.data()),
                             out.size()),
        0);
    EXPECT_TRUE(n.ok());
    out.resize(n.ok() ? n.value() : 0);
    EXPECT_TRUE(plfs_close(fd.value(), ::getpid()).ok());
    return out;
  }

  std::string name_;
};

TEST_F(MultiprocSoakTest, WritersCrashesAndKillsLeaveCoherentState) {
  TempDir tmp;
  const std::string path = tmp.sub("shared");

  // --- round 0: clean concurrent write of all regions -------------------
  for (const int code : run_round(path, 0, -1, "")) EXPECT_EQ(code, 0);
  std::string round0 = read_file(path);
  ASSERT_EQ(round0.size(), kFileSize);
  for (std::size_t off = 0; off < kFileSize; ++off) {
    ASSERT_EQ(round0[off], fill_of(static_cast<int>(off / kRegion), 0))
        << "round 0 byte " << off;
  }

  // --- round 1: rewrite everything; one child crashes mid-region --------
  // The crash clause fires after enough instrumented ops for the doomed
  // child to have opened the container and landed some (but typically not
  // all) of its chunks.
  const int doomed = 2;
  const auto codes = run_round(path, 1, doomed, "crash:after=10");
  for (int w = 0; w < kWriters; ++w) {
    if (w == doomed) {
      EXPECT_TRUE(codes[w] == 137 || codes[w] == 0)
          << "doomed writer exited " << codes[w];
    } else {
      EXPECT_EQ(codes[w], 0) << "writer " << w;
    }
  }

  // Recover the container (cleans the crashed writer's leavings) and check
  // every byte: survivors must show round-1 fill exactly; the crashed
  // writer's region holds old or new fill and nothing else.
  ASSERT_TRUE(plfs_recover(path).ok());
  const std::string round1 = read_file(path);
  ASSERT_EQ(round1.size(), kFileSize);
  for (std::size_t off = 0; off < kFileSize; ++off) {
    const int w = static_cast<int>(off / kRegion);
    if (w == doomed) {
      ASSERT_TRUE(round1[off] == fill_of(w, 0) || round1[off] == fill_of(w, 1))
          << "crashed writer's byte " << off << " is neither round's fill";
    } else {
      ASSERT_EQ(round1[off], fill_of(w, 1)) << "round 1 byte " << off;
    }
  }

  // --- round 2: kill -9 a registered writer, then keep using everything --
  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t victim = ::fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) {
    ::close(ready[0]);
    auto fd = plfs_open(path, O_WRONLY, ::getpid());
    char byte = fd.ok() ? 'k' : 'e';
    (void)!::write(ready[1], &byte, 1);
    ::pause();
    ::_exit(0);
  }
  ::close(ready[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ::close(ready[0]);
  ASSERT_EQ(byte, 'k');
  EXPECT_TRUE(shmeta::has_foreign_writers(path));

  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Segment must be fully usable: the dead registrant reclaims, new
  // registrations and bumps succeed, and recovery + reads still give the
  // exact bytes round 1 left behind.
  EXPECT_FALSE(shmeta::has_foreign_writers(path));
  const int slot = shmeta::register_writer(path);
  EXPECT_GE(slot, 0);
  shmeta::unregister_writer(slot);
  shmeta::bump(path);
  EXPECT_TRUE(shmeta::generation(path).has_value());

  ASSERT_TRUE(plfs_recover(path).ok());
  const std::string round2 = read_file(path);
  ASSERT_EQ(round2, round1) << "kill -9 of an idle registrant changed bytes";
}

}  // namespace
}  // namespace ldplfs::plfs
