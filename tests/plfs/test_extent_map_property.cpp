// Randomized property test: ExtentMap insert/lookup/truncate against a
// naive per-byte oracle.
//
// The oracle stores, for every logical byte, whether it is mapped and by
// which (dropping, physical) pair — exactly what lookup() promises to
// reconstruct as piece runs. Thousands of seeded random operations drive
// both structures; any divergence (coverage gap, overlap, wrong mapping,
// stale data past a truncate) is a bug in the map's splitting logic.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "plfs/extent_map.hpp"

namespace ldplfs::plfs {
namespace {

struct OracleCell {
  bool mapped = false;
  std::uint32_t dropping = 0;
  std::uint64_t physical = 0;
};

class Oracle {
 public:
  void insert(const Extent& e) {
    if (e.length == 0) return;
    if (bytes_.size() < e.logical + e.length) {
      bytes_.resize(e.logical + e.length);
    }
    for (std::uint64_t i = 0; i < e.length; ++i) {
      bytes_[e.logical + i] = {true, e.dropping, e.physical + i};
    }
  }

  void truncate(std::uint64_t size) {
    if (bytes_.size() > size) bytes_.resize(size);
  }

  [[nodiscard]] OracleCell at(std::uint64_t offset) const {
    return offset < bytes_.size() ? bytes_[offset] : OracleCell{};
  }

  [[nodiscard]] std::uint64_t mapped_end() const {
    for (std::uint64_t i = bytes_.size(); i > 0; --i) {
      if (bytes_[i - 1].mapped) return i;
    }
    return 0;
  }

 private:
  std::vector<OracleCell> bytes_;
};

/// Check that lookup() over [offset, offset+length) tiles the range exactly
/// and agrees with the oracle byte-for-byte.
void verify_window(const ExtentMap& map, const Oracle& oracle,
                   std::uint64_t offset, std::uint64_t length) {
  const auto pieces = map.lookup(offset, length);
  std::uint64_t cursor = offset;
  for (const auto& piece : pieces) {
    ASSERT_EQ(piece.logical, cursor) << "gap or overlap at " << cursor;
    ASSERT_GT(piece.length, 0u);
    for (std::uint64_t i = 0; i < piece.length; ++i) {
      const OracleCell cell = oracle.at(piece.logical + i);
      ASSERT_EQ(piece.hole, !cell.mapped)
          << "byte " << piece.logical + i << " hole mismatch";
      if (!piece.hole) {
        ASSERT_EQ(piece.dropping, cell.dropping)
            << "byte " << piece.logical + i << " wrong dropping";
        ASSERT_EQ(piece.physical + i, cell.physical)
            << "byte " << piece.logical + i << " wrong physical offset";
      }
    }
    cursor += piece.length;
  }
  ASSERT_EQ(cursor, offset + length) << "lookup does not cover the range";
}

void run_property_trial(std::uint64_t seed, int ops) {
  // Small domain so overlaps, splits and truncate interactions are dense.
  constexpr std::uint64_t kDomain = 48 * 1024;
  Rng rng(seed);
  ExtentMap map;
  Oracle oracle;
  std::uint64_t timestamp = 1;

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t kind = rng.below(10);
    if (kind < 8) {
      Extent e;
      e.logical = rng.below(kDomain);
      e.length = 1 + rng.below(512);
      e.dropping = static_cast<std::uint32_t>(rng.below(16));
      e.physical = rng.below(1 << 20);
      e.timestamp = timestamp++;
      map.insert(e);
      oracle.insert(e);
    } else if (kind == 8) {
      const std::uint64_t size = rng.below(kDomain + 1024);
      map.truncate(size);
      oracle.truncate(size);
    } else {
      const std::uint64_t off = rng.below(kDomain);
      verify_window(map, oracle, off, 1 + rng.below(2048));
    }
    if (op % 64 == 0) {
      ASSERT_TRUE(map.check_invariants()) << "seed " << seed << " op " << op;
    }
  }

  ASSERT_TRUE(map.check_invariants());
  EXPECT_EQ(map.mapped_end(), oracle.mapped_end());
  // Full-domain sweep, plus a window straddling the mapped end.
  verify_window(map, oracle, 0, kDomain + 4096);
  const std::uint64_t end = map.mapped_end();
  verify_window(map, oracle, end > 100 ? end - 100 : 0, 300);
}

TEST(ExtentMapPropertyTest, RandomOpsMatchOracleSeed1) {
  run_property_trial(1, 3000);
}

TEST(ExtentMapPropertyTest, RandomOpsMatchOracleSeed42) {
  run_property_trial(42, 3000);
}

TEST(ExtentMapPropertyTest, RandomOpsMatchOracleSeed1337) {
  run_property_trial(1337, 3000);
}

TEST(ExtentMapPropertyTest, TruncateHeavyWorkload) {
  // Truncates every few ops: stresses the resize/cut path specifically.
  constexpr std::uint64_t kDomain = 8 * 1024;
  Rng rng(7);
  ExtentMap map;
  Oracle oracle;
  std::uint64_t timestamp = 1;
  for (int op = 0; op < 2000; ++op) {
    if (rng.below(3) == 0) {
      const std::uint64_t size = rng.below(kDomain);
      map.truncate(size);
      oracle.truncate(size);
    } else {
      Extent e;
      e.logical = rng.below(kDomain);
      e.length = 1 + rng.below(256);
      e.dropping = static_cast<std::uint32_t>(rng.below(4));
      e.physical = rng.below(1 << 16);
      e.timestamp = timestamp++;
      map.insert(e);
      oracle.insert(e);
    }
    if (op % 50 == 0) verify_window(map, oracle, 0, kDomain + 512);
  }
  ASSERT_TRUE(map.check_invariants());
  verify_window(map, oracle, 0, kDomain + 512);
}

}  // namespace
}  // namespace ldplfs::plfs
