// Crash-consistency soak: fork writer children, kill each at a randomized
// syscall via the fault injector (crash:after=N), and assert that
// plfs_recover always turns the debris into a readable, prefix-consistent
// container. The soak runs once per write engine — synchronous and
// write-behind (with a buffer small enough that rotations happen mid-run,
// so kills can land inside a pool thread's background flush). Also pins
// the POSIX write-back contract the injector exists to test: a failed data
// pwrite poisons the writer stream, and the original errno resurfaces from
// plfs_sync / plfs_close — immediately on the synchronous engine (that
// test forces LDPLFS_WRITE_BEHIND=0), deferred on the write-behind engine
// (covered by test_write_behind.cpp).
//
// Everything is deterministic: kill points come from a fixed-seed Rng, and
// iteration 0 uses a kill point beyond the child's op count as the
// no-crash control.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "plfs/plfs.hpp"
#include "plfs/recovery.hpp"
#include "posix/faults.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

constexpr std::size_t kChunk = 1024;
constexpr std::size_t kChunks = 16;
constexpr pid_t kWriterPid = 7;
constexpr int kIterations = 24;  // acceptance floor is 20 kill points

char chunk_fill(std::size_t index) {
  return static_cast<char>('A' + static_cast<char>(index));
}

/// Child body: write kChunks sequential chunks under `fault_spec`, syncing
/// every `sync_every` chunks. In write-behind mode the buffer holds four
/// chunks and the sync interval holds eight, so every interval rotates the
/// double buffer once — half the data travels through a pool-thread flush,
/// half through the drain barrier. Exit 0 = ran to completion; injected
/// crash clauses _exit(137).
[[noreturn]] void run_doomed_writer(const std::string& path,
                                    const std::string& fault_spec,
                                    bool write_behind) {
  if (write_behind) {
    ::setenv("LDPLFS_WRITE_BEHIND", "1", 1);
    ::setenv("LDPLFS_WRITE_BUFFER", "4096", 1);  // 4 chunks per buffer
  } else {
    ::setenv("LDPLFS_WRITE_BEHIND", "0", 1);
  }
  const std::size_t sync_every = write_behind ? 8 : 1;
  posix::faults::clear();
  if (!posix::faults::configure(fault_spec)) ::_exit(2);
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kWriterPid);
  if (!fd.ok()) ::_exit(3);
  for (std::size_t i = 0; i < kChunks; ++i) {
    const std::string chunk(kChunk, chunk_fill(i));
    if (!fd.value()->write(as_bytes(chunk), i * kChunk, kWriterPid).ok()) {
      ::_exit(4);
    }
    // Sync so every surviving index record describes data that a completed
    // pwrite already put in the page cache: the recovered prefix can only
    // ever be whole chunks.
    if (i % sync_every == sync_every - 1) {
      if (!plfs_sync(*fd.value(), kWriterPid).ok()) ::_exit(5);
    }
  }
  if (!plfs_close(fd.value(), kWriterPid).ok()) ::_exit(6);
  ::_exit(0);
}

/// Recover `path` and assert the strongest invariant a killed sequential
/// writer allows: the container holds an intact prefix of whole chunks.
void assert_prefix_consistent(const std::string& path, int iteration) {
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok()) << "iteration " << iteration << ": "
                          << stats.error().message();
  const std::uint64_t size = stats.value().logical_size;
  EXPECT_EQ(size % kChunk, 0u) << "iteration " << iteration
                               << ": torn chunk survived recovery";
  EXPECT_LE(size, kChunks * kChunk) << "iteration " << iteration;

  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok()) << "iteration " << iteration;
  EXPECT_EQ(attr.value().size, size) << "iteration " << iteration;

  auto fd = plfs_open(path, O_RDONLY, 1);
  ASSERT_TRUE(fd.ok()) << "iteration " << iteration;
  std::vector<std::byte> buf(size);
  auto got = plfs_read(*fd.value(), buf, 0);
  ASSERT_TRUE(got.ok()) << "iteration " << iteration;
  ASSERT_EQ(got.value(), size) << "iteration " << iteration;
  for (std::uint64_t off = 0; off < size; ++off) {
    ASSERT_EQ(static_cast<char>(buf[off]), chunk_fill(off / kChunk))
        << "iteration " << iteration << ": byte " << off;
  }
  ASSERT_TRUE(plfs_close(fd.value(), 1).ok()) << "iteration " << iteration;
}

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    posix::faults::clear();
    ::unsetenv("LDPLFS_WRITE_BEHIND");
    ::unsetenv("LDPLFS_WRITE_BUFFER");
  }
  void TearDown() override {
    posix::faults::clear();
    ::unsetenv("LDPLFS_WRITE_BEHIND");
    ::unsetenv("LDPLFS_WRITE_BUFFER");
  }

  /// Fork a doomed writer for `path`, wait, and return its exit code (or -1
  /// after flagging a test failure): 0 = finished, 137 = injected crash.
  int reap_doomed_writer(const std::string& path,
                         const std::string& fault_spec, bool write_behind,
                         int iteration = -1) {
    const pid_t pid = ::fork();
    if (pid == 0) run_doomed_writer(path, fault_spec, write_behind);
    EXPECT_GT(pid, 0);
    if (pid < 0) return -1;
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status)) << "iteration " << iteration;
    if (!WIFEXITED(status)) return -1;
    const int code = WEXITSTATUS(status);
    EXPECT_TRUE(code == 0 || code == 137)
        << "iteration " << iteration << ": writer exited " << code
        << " (injected faults must crash, never error)";
    return code == 0 || code == 137 ? code : -1;
  }

  /// The soak body, once per engine. `kill_span` bounds the random kill
  /// point; it tracks the engine's instrumented-op count per full run so
  /// most kills land inside the run (write-behind batches syscalls, so its
  /// runs are much shorter).
  void run_soak(bool write_behind, std::uint64_t kill_span) {
    int crashed = 0;
    int completed = 0;
    int recovered = 0;
    for (int iteration = 0; iteration < kIterations; ++iteration) {
      const std::string path = tmp_.sub("soak." + std::to_string(iteration));
      Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(iteration) +
              (write_behind ? 0x5EEDu : 0u));
      const std::uint64_t kill_at_op =
          iteration == 0 ? 10'000 : 1 + rng.next() % kill_span;
      const int code = reap_doomed_writer(
          path, "crash:after=" + std::to_string(kill_at_op), write_behind,
          iteration);
      if (code < 0) return;
      code == 0 ? ++completed : ++crashed;

      if (!plfs_is_container(path)) {
        // Killed before the access marker: nothing was committed, and
        // recovery must say so rather than conjure a container.
        EXPECT_EQ(plfs_recover(path).error_code(), ENOENT)
            << "iteration " << iteration;
        continue;
      }
      ++recovered;
      assert_prefix_consistent(path, iteration);
      if (code == 0) {
        auto attr = plfs_getattr(path);
        ASSERT_TRUE(attr.ok());
        EXPECT_EQ(attr.value().size, kChunks * kChunk);
      }
    }
    // The fixed seed must actually exercise both fates.
    EXPECT_GT(crashed, 0);
    EXPECT_GT(completed, 0);
    EXPECT_GT(recovered, 0);
  }

  TempDir tmp_;
};

TEST_F(CrashConsistencyTest, RandomKillPointsAlwaysRecoverable) {
  // ~86 instrumented ops per full synchronous run; [1, 90] spans container
  // creation, every write/sync round, and close-time metadata.
  run_soak(/*write_behind=*/false, /*kill_span=*/90);
}

TEST_F(CrashConsistencyTest, RandomKillPointsAlwaysRecoverableWriteBehind) {
  // Write-behind batches 16 writes into 4 pwrites (2 background, 2 drain)
  // and 2 fsyncs, so a full run is ~28 instrumented ops.
  run_soak(/*write_behind=*/true, /*kill_span=*/28);
}

TEST_F(CrashConsistencyTest, CrashInFirstBackgroundFlushCommitsNothing) {
  const std::string path = tmp_.sub("flushcrash");
  // Data appends are the only pwrites in a writer's life, and under
  // write-behind the first one is issued by the pool thread (the first
  // double-buffer rotation). pwrite:crash therefore kills the process
  // inside the background flush, before any index record was flushed:
  // recovery must find an intact, empty container.
  const int code =
      reap_doomed_writer(path, "pwrite:crash", /*write_behind=*/true);
  if (code < 0) return;
  EXPECT_EQ(code, 137) << "crash clause must fire inside the first flush";
  ASSERT_TRUE(plfs_is_container(path));
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().logical_size, 0u);
}

TEST_F(CrashConsistencyTest, SyncedPrefixSurvivesCrashInLaterFlush) {
  const std::string path = tmp_.sub("flushcrash2");
  // pwrites in a write-behind run land in order: background flush (chunks
  // 0-3), drain at the first sync (chunks 4-7), background flush (chunks
  // 8-11), drain at the second sync. after=2 lets the first sync interval
  // complete and crashes the pool thread mid-flush of the second: exactly
  // the synced 8-chunk prefix must survive.
  const int code = reap_doomed_writer(path, "pwrite:after=2:crash",
                                      /*write_behind=*/true);
  if (code < 0) return;
  EXPECT_EQ(code, 137);
  ASSERT_TRUE(plfs_is_container(path));
  assert_prefix_consistent(path, /*iteration=*/-1);
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().logical_size, 8 * kChunk);
}

TEST_F(CrashConsistencyTest, FailedPwritePoisonsSyncAndClose) {
  // This test pins the *synchronous* engine's immediate-error contract
  // (write-behind defers the same poisoning to the flush; see
  // test_write_behind.cpp for that side).
  ::setenv("LDPLFS_WRITE_BEHIND", "0", 1);
  const std::string path = tmp_.sub("enospc");
  // One injected ENOSPC (count=1): the syscall layer would succeed again
  // afterwards, so every later failure below is the writer's sticky
  // deferred error, not the injector.
  ASSERT_TRUE(
      posix::faults::configure("pwrite:after=1:errno=ENOSPC:count=1"));
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kWriterPid);
  ASSERT_TRUE(fd.ok());
  const std::string chunk(kChunk, chunk_fill(0));
  ASSERT_TRUE(fd.value()->write(as_bytes(chunk), 0, kWriterPid).ok());

  EXPECT_EQ(
      fd.value()->write(as_bytes(chunk), kChunk, kWriterPid).error_code(),
      ENOSPC);
  EXPECT_EQ(
      fd.value()->write(as_bytes(chunk), 2 * kChunk, kWriterPid).error_code(),
      ENOSPC);
  EXPECT_EQ(plfs_sync(*fd.value(), kWriterPid).error_code(), ENOSPC);
  EXPECT_EQ(plfs_close(fd.value(), kWriterPid).error_code(), ENOSPC);

  // The stream reported the loss; what was acknowledged before it is intact.
  posix::faults::clear();
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().logical_size, kChunk);
  auto rfd = plfs_open(path, O_RDONLY, 1);
  ASSERT_TRUE(rfd.ok());
  std::vector<std::byte> buf(kChunk);
  auto got = plfs_read(*rfd.value(), buf, 0);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value(), kChunk);
  for (std::size_t i = 0; i < kChunk; ++i) {
    ASSERT_EQ(static_cast<char>(buf[i]), chunk_fill(0));
  }
  ASSERT_TRUE(plfs_close(rfd.value(), 1).ok());
}

}  // namespace
}  // namespace ldplfs::plfs
