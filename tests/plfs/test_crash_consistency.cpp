// Crash-consistency soak: fork writer children, kill each at a randomized
// syscall via the fault injector (crash:after=N), and assert that
// plfs_recover always turns the debris into a readable, prefix-consistent
// container. Also pins the POSIX write-back contract the injector exists to
// test: a failed data pwrite poisons the writer stream, and the original
// errno resurfaces from plfs_sync / plfs_close.
//
// Everything is deterministic: kill points come from a fixed-seed Rng, and
// iteration 0 uses a kill point beyond the child's op count as the
// no-crash control.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "plfs/plfs.hpp"
#include "plfs/recovery.hpp"
#include "posix/faults.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

constexpr std::size_t kChunk = 1024;
constexpr std::size_t kChunks = 16;
constexpr pid_t kWriterPid = 7;
constexpr int kIterations = 24;  // acceptance floor is 20 kill points

char chunk_fill(std::size_t index) {
  return static_cast<char>('A' + static_cast<char>(index));
}

/// Child body: write kChunks sequential chunks, syncing after each, under a
/// crash plan that _exit(137)s the process at the Nth instrumented syscall.
/// Exit 0 = ran to completion (kill point beyond the op count).
[[noreturn]] void run_doomed_writer(const std::string& path,
                                    std::uint64_t kill_at_op) {
  posix::faults::clear();
  if (!posix::faults::configure("crash:after=" +
                                std::to_string(kill_at_op))) {
    ::_exit(2);
  }
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kWriterPid);
  if (!fd.ok()) ::_exit(3);
  for (std::size_t i = 0; i < kChunks; ++i) {
    const std::string chunk(kChunk, chunk_fill(i));
    if (!fd.value()->write(as_bytes(chunk), i * kChunk, kWriterPid).ok()) {
      ::_exit(4);
    }
    // Sync per chunk so every surviving index record describes data that a
    // completed pwrite already put in the page cache: the recovered prefix
    // can only ever be whole chunks.
    if (!plfs_sync(*fd.value(), kWriterPid).ok()) ::_exit(5);
  }
  if (!plfs_close(fd.value(), kWriterPid).ok()) ::_exit(6);
  ::_exit(0);
}

/// Recover `path` and assert the strongest invariant a killed sequential
/// writer allows: the container holds an intact prefix of whole chunks.
void assert_prefix_consistent(const std::string& path, int iteration) {
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok()) << "iteration " << iteration << ": "
                          << stats.error().message();
  const std::uint64_t size = stats.value().logical_size;
  EXPECT_EQ(size % kChunk, 0u) << "iteration " << iteration
                               << ": torn chunk survived recovery";
  EXPECT_LE(size, kChunks * kChunk) << "iteration " << iteration;

  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok()) << "iteration " << iteration;
  EXPECT_EQ(attr.value().size, size) << "iteration " << iteration;

  auto fd = plfs_open(path, O_RDONLY, 1);
  ASSERT_TRUE(fd.ok()) << "iteration " << iteration;
  std::vector<std::byte> buf(size);
  auto got = plfs_read(*fd.value(), buf, 0);
  ASSERT_TRUE(got.ok()) << "iteration " << iteration;
  ASSERT_EQ(got.value(), size) << "iteration " << iteration;
  for (std::uint64_t off = 0; off < size; ++off) {
    ASSERT_EQ(static_cast<char>(buf[off]), chunk_fill(off / kChunk))
        << "iteration " << iteration << ": byte " << off;
  }
  ASSERT_TRUE(plfs_close(fd.value(), 1).ok()) << "iteration " << iteration;
}

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override { posix::faults::clear(); }
  void TearDown() override { posix::faults::clear(); }
  TempDir tmp_;
};

TEST_F(CrashConsistencyTest, RandomKillPointsAlwaysRecoverable) {
  int crashed = 0;
  int completed = 0;
  int recovered = 0;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    const std::string path = tmp_.sub("soak." + std::to_string(iteration));
    // ~86 instrumented ops per full run; [1, 90] spans container creation,
    // every write/sync round, and close-time metadata. Iteration 0 is the
    // no-crash control.
    Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(iteration));
    const std::uint64_t kill_at_op =
        iteration == 0 ? 10'000 : 1 + rng.next() % 90;

    const pid_t pid = ::fork();
    if (pid == 0) run_doomed_writer(path, kill_at_op);
    ASSERT_GT(pid, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "iteration " << iteration;
    const int code = WEXITSTATUS(status);
    ASSERT_TRUE(code == 0 || code == 137)
        << "iteration " << iteration << ": writer exited " << code
        << " (injected faults must crash, never error)";
    code == 0 ? ++completed : ++crashed;

    if (!plfs_is_container(path)) {
      // Killed before the access marker: nothing was committed, and
      // recovery must say so rather than conjure a container.
      EXPECT_EQ(plfs_recover(path).error_code(), ENOENT)
          << "iteration " << iteration;
      continue;
    }
    ++recovered;
    assert_prefix_consistent(path, iteration);
    if (code == 0) {
      auto attr = plfs_getattr(path);
      ASSERT_TRUE(attr.ok());
      EXPECT_EQ(attr.value().size, kChunks * kChunk);
    }
  }
  // The fixed seed must actually exercise both fates.
  EXPECT_GT(crashed, 0);
  EXPECT_GT(completed, 0);
  EXPECT_GT(recovered, 0);
}

TEST_F(CrashConsistencyTest, FailedPwritePoisonsSyncAndClose) {
  const std::string path = tmp_.sub("enospc");
  // One injected ENOSPC (count=1): the syscall layer would succeed again
  // afterwards, so every later failure below is the writer's sticky
  // deferred error, not the injector.
  ASSERT_TRUE(
      posix::faults::configure("pwrite:after=1:errno=ENOSPC:count=1"));
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kWriterPid);
  ASSERT_TRUE(fd.ok());
  const std::string chunk(kChunk, chunk_fill(0));
  ASSERT_TRUE(fd.value()->write(as_bytes(chunk), 0, kWriterPid).ok());

  EXPECT_EQ(
      fd.value()->write(as_bytes(chunk), kChunk, kWriterPid).error_code(),
      ENOSPC);
  EXPECT_EQ(
      fd.value()->write(as_bytes(chunk), 2 * kChunk, kWriterPid).error_code(),
      ENOSPC);
  EXPECT_EQ(plfs_sync(*fd.value(), kWriterPid).error_code(), ENOSPC);
  EXPECT_EQ(plfs_close(fd.value(), kWriterPid).error_code(), ENOSPC);

  // The stream reported the loss; what was acknowledged before it is intact.
  posix::faults::clear();
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().logical_size, kChunk);
  auto rfd = plfs_open(path, O_RDONLY, 1);
  ASSERT_TRUE(rfd.ok());
  std::vector<std::byte> buf(kChunk);
  auto got = plfs_read(*rfd.value(), buf, 0);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value(), kChunk);
  for (std::size_t i = 0; i < kChunk; ++i) {
    ASSERT_EQ(static_cast<char>(buf[i]), chunk_fill(0));
  }
  ASSERT_TRUE(plfs_close(rfd.value(), 1).ok());
}

}  // namespace
}  // namespace ldplfs::plfs
