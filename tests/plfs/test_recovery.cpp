#include "plfs/recovery.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include "common/paths.hpp"
#include "plfs/compaction.hpp"
#include "plfs/container.hpp"
#include "plfs/index_format.hpp"
#include "plfs/plfs.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

/// Plant the on-disk debris of a writer killed mid-stream.
void plant_crash_debris(const std::string& path) {
  ContainerLayout layout(path);
  WriterId ghost{"deadhost", 999, next_timestamp()};
  ASSERT_TRUE(posix::make_dirs(layout.hostdir_for(ghost.host)).ok());
  ASSERT_TRUE(posix::write_file(layout.data_dropping_path(ghost),
                                "never-indexed")
                  .ok());
  std::string idx = encode_index_header({"hostdir.0/dropping.data.ghost"});
  idx.append(17, '\x5a');  // torn record tail
  ASSERT_TRUE(
      posix::write_file(layout.index_dropping_path(ghost), idx).ok());
  ASSERT_TRUE(posix::write_file(layout.openhost_path(ghost), "").ok());
}

TEST(RecoveryTest, MissingContainerFails) {
  TempDir tmp;
  auto result = plfs_recover(tmp.sub("none"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error_code(), ENOENT);
}

TEST(RecoveryTest, HealthyContainerIsIdempotent) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().stale_openhosts_removed, 0u);
  EXPECT_EQ(stats.value().logical_size, 10u);
  EXPECT_TRUE(stats.value().index_readable);

  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 10u);
  EXPECT_TRUE(attr.value().from_hints);
}

TEST(RecoveryTest, ClearsCrashDebrisAndRestoresFastPath) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("survivor"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  plant_crash_debris(path);

  // Before recovery: stale openhost disables the fast path...
  auto before = plfs_getattr(path);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().from_hints);
  // ...and blocks compaction.
  EXPECT_EQ(plfs_compact(path).error_code(), EBUSY);

  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().stale_openhosts_removed, 1u);
  EXPECT_EQ(stats.value().logical_size, 8u);

  auto after = plfs_getattr(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size, 8u);
  EXPECT_TRUE(after.value().from_hints);
  // Compaction works again and prunes the ghost's droppings.
  auto compacted = plfs_compact(path);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted.value().droppings_after, 1u);
}

TEST(RecoveryTest, StaleHintCorrectedAfterGhostTruncate) {
  // A crashed writer can leave hints that disagree with the index (e.g. it
  // truncated, invalidating others' hints, then died before re-dropping).
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_RDWR, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 0, 5).ok());
    ASSERT_TRUE(fd.value()->truncate(4, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  ContainerLayout layout(path);
  // Plant a bogus over-reporting hint.
  MetaHint bogus{9999, 9999, "liar", 1};
  ASSERT_TRUE(posix::write_file(ldplfs::path_join(layout.metadata_path(),
                                          ContainerLayout::meta_name(bogus)),
                                "")
                  .ok());

  ASSERT_TRUE(plfs_recover(path).ok());
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 4u);
  EXPECT_TRUE(attr.value().from_hints);
}

}  // namespace
}  // namespace ldplfs::plfs
