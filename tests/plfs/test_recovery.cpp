#include "plfs/recovery.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include "common/paths.hpp"
#include "plfs/compaction.hpp"
#include "plfs/container.hpp"
#include "plfs/index_format.hpp"
#include "plfs/plfs.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

/// Plant the on-disk debris of a writer killed mid-stream.
void plant_crash_debris(const std::string& path) {
  ContainerLayout layout(path);
  WriterId ghost{"deadhost", 999, next_timestamp()};
  ASSERT_TRUE(posix::make_dirs(layout.hostdir_for(ghost.host)).ok());
  ASSERT_TRUE(posix::write_file(layout.data_dropping_path(ghost),
                                "never-indexed")
                  .ok());
  std::string idx = encode_index_header({"hostdir.0/dropping.data.ghost"});
  idx.append(17, '\x5a');  // torn record tail
  ASSERT_TRUE(
      posix::write_file(layout.index_dropping_path(ghost), idx).ok());
  ASSERT_TRUE(posix::write_file(layout.openhost_path(ghost), "").ok());
}

TEST(RecoveryTest, MissingContainerFails) {
  TempDir tmp;
  auto result = plfs_recover(tmp.sub("none"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error_code(), ENOENT);
}

TEST(RecoveryTest, HealthyContainerIsIdempotent) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().stale_openhosts_removed, 0u);
  EXPECT_EQ(stats.value().logical_size, 10u);
  EXPECT_TRUE(stats.value().index_readable);

  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 10u);
  EXPECT_TRUE(attr.value().from_hints);
}

TEST(RecoveryTest, ClearsCrashDebrisAndRestoresFastPath) {
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("survivor"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  plant_crash_debris(path);

  // Before recovery: stale openhost disables the fast path...
  auto before = plfs_getattr(path);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().from_hints);
  // ...and blocks compaction.
  EXPECT_EQ(plfs_compact(path).error_code(), EBUSY);

  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().stale_openhosts_removed, 1u);
  EXPECT_EQ(stats.value().logical_size, 8u);
  // The ghost's index referenced a bogus data path, so its real data
  // dropping is an orphan; its 17 trailing junk bytes are a torn tail.
  EXPECT_EQ(stats.value().orphaned_droppings, 1u);
  EXPECT_EQ(stats.value().torn_tail_bytes, 17u);
  EXPECT_EQ(stats.value().quarantined_droppings, 0u);
  EXPECT_TRUE(stats.value().index_readable);

  auto after = plfs_getattr(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size, 8u);
  EXPECT_TRUE(after.value().from_hints);
  // Compaction works again and prunes the ghost's droppings.
  auto compacted = plfs_compact(path);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted.value().droppings_after, 1u);
}

TEST(RecoveryTest, OrphanedDataDroppingIsReportedAndKept) {
  // Crash shape: a writer's data dropping reached disk but its index
  // dropping never did. The bytes are invisible (the index is the source of
  // truth) — recovery must say so loudly and must NOT delete the data.
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("AAAA"), 0, 5).ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("BBBB"), 4, 6).ok());
    ASSERT_TRUE(fd.value()->close(5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 6).ok());
  }
  // Delete writer 6's index dropping, stranding its data dropping.
  auto indexes = find_index_droppings(path);
  ASSERT_TRUE(indexes.ok());
  ASSERT_EQ(indexes.value().size(), 2u);
  std::string doomed;
  for (const auto& index_path : indexes.value()) {
    if (index_path.size() >= 2 &&
        index_path.compare(index_path.size() - 2, 2, ".6") == 0) {
      doomed = index_path;
    }
  }
  ASSERT_FALSE(doomed.empty());
  ASSERT_TRUE(posix::remove_file(doomed).ok());
  const std::string orphan_data =
      doomed.substr(0, doomed.rfind("dropping.index.")) + "dropping.data." +
      doomed.substr(doomed.rfind("dropping.index.") + 15);

  auto scan = plfs_scan(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().orphaned_droppings.size(), 1u);

  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().orphaned_droppings, 1u);
  EXPECT_EQ(stats.value().logical_size, 4u);
  EXPECT_TRUE(stats.value().index_readable);
  // The orphan's bytes survive for forensics / later salvage.
  EXPECT_TRUE(posix::exists(orphan_data));

  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 4u);
}

TEST(RecoveryTest, TornIndexTailIsTrimmed) {
  // Crash shape: the writer died mid-append, leaving a partial record on
  // the index tail. The decoder ignores it, but recovery must trim it so
  // later appends cannot shift records out of 40-byte alignment.
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  auto indexes = find_index_droppings(path);
  ASSERT_TRUE(indexes.ok());
  ASSERT_EQ(indexes.value().size(), 1u);
  auto whole = posix::read_file(indexes.value()[0]);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(posix::write_file(indexes.value()[0],
                                whole.value() + std::string(13, '\x7f'))
                  .ok());

  auto scan = plfs_scan(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().torn_tails.size(), 1u);
  EXPECT_EQ(scan.value().torn_tail_bytes(), 13u);

  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().torn_tail_bytes, 13u);
  EXPECT_EQ(stats.value().logical_size, 10u);
  EXPECT_TRUE(stats.value().index_readable);

  // Post-recovery the container is pristine: no torn tails, full content.
  auto rescan = plfs_scan(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_TRUE(rescan.value().torn_tails.empty());
  EXPECT_TRUE(rescan.value().orphaned_droppings.empty());
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 10u);
}

TEST(RecoveryTest, UndecodableIndexDroppingIsQuarantined) {
  // Crash shape: an index dropping so mangled the decoder rejects it
  // outright. Recovery renames it aside (forensics) so the survivors merge.
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_WRONLY, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("keepme"), 0, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  ContainerLayout layout(path);
  WriterId mangled{"badhost", 42, next_timestamp()};
  ASSERT_TRUE(posix::make_dirs(layout.hostdir_for(mangled.host)).ok());
  ASSERT_TRUE(posix::write_file(layout.index_dropping_path(mangled),
                                "this is not an index dropping")
                  .ok());

  auto scan = plfs_scan(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().unreadable_droppings.size(), 1u);

  auto stats = plfs_recover(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().quarantined_droppings, 1u);
  EXPECT_FALSE(stats.value().index_readable);
  EXPECT_EQ(stats.value().logical_size, 6u);
  // Renamed aside, not deleted — and no longer matched by dropping globs.
  EXPECT_FALSE(posix::exists(layout.index_dropping_path(mangled)));
  EXPECT_TRUE(posix::exists(ldplfs::path_join(
      layout.hostdir_for(mangled.host),
      "quarantined." + ContainerLayout::index_dropping_name(mangled))));
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 6u);
}

TEST(RecoveryTest, StaleHintCorrectedAfterGhostTruncate) {
  // A crashed writer can leave hints that disagree with the index (e.g. it
  // truncated, invalidating others' hints, then died before re-dropping).
  TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto fd = plfs_open(path, O_CREAT | O_RDWR, 5);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fd.value()->write(as_bytes("0123456789"), 0, 5).ok());
    ASSERT_TRUE(fd.value()->truncate(4, 5).ok());
    ASSERT_TRUE(plfs_close(fd.value(), 5).ok());
  }
  ContainerLayout layout(path);
  // Plant a bogus over-reporting hint.
  MetaHint bogus{9999, 9999, "liar", 1};
  ASSERT_TRUE(posix::write_file(ldplfs::path_join(layout.metadata_path(),
                                          ContainerLayout::meta_name(bogus)),
                                "")
                  .ok());

  ASSERT_TRUE(plfs_recover(path).ok());
  auto attr = plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 4u);
  EXPECT_TRUE(attr.value().from_hints);
}

}  // namespace
}  // namespace ldplfs::plfs
