#include "sim/devices.hpp"

#include <gtest/gtest.h>

namespace ldplfs::sim {
namespace {

TEST(DiskModelTest, SequentialSkipsPositioning) {
  DiskModel disk{0.008, 7200.0, 100e6};
  const double seq = disk.service_s(1 << 20, true);
  const double rnd = disk.service_s(1 << 20, false);
  EXPECT_NEAR(seq, (1 << 20) / 100e6, 1e-9);
  EXPECT_NEAR(rnd - seq, 0.008 + 30.0 / 7200.0, 1e-9);
}

TEST(DiskModelTest, HalfRotationFromRpm) {
  DiskModel disk{0.0, 15000.0, 1};
  EXPECT_NEAR(disk.half_rotation_s(), 0.002, 1e-9);
}

TEST(RaidArrayTest, Raid6DataDisks) {
  RaidArray array{{}, 10, RaidLevel::kRaid6};
  EXPECT_EQ(array.data_disks(), 8u);  // 8+2
  RaidArray big{{}, 50, RaidLevel::kRaid6};
  EXPECT_EQ(big.data_disks(), 40u);  // five 8+2 groups
}

TEST(RaidArrayTest, Raid10HalvesDisks) {
  RaidArray array{{}, 24, RaidLevel::kRaid10};
  EXPECT_EQ(array.data_disks(), 12u);
}

TEST(RaidArrayTest, StreamingSumsDataDisks) {
  RaidArray array{{0.008, 7200.0, 50e6}, 10, RaidLevel::kRaid6};
  EXPECT_NEAR(array.streaming_bps(), 8 * 50e6, 1);
}

TEST(RaidArrayTest, EffectiveOverrideWins) {
  RaidArray array{{0.008, 7200.0, 50e6}, 10, RaidLevel::kRaid6, 123e6};
  EXPECT_NEAR(array.streaming_bps(), 123e6, 1);
}

TEST(RaidArrayTest, Raid6RandomWritePaysRmw) {
  RaidArray array{{0.010, 7200.0, 100e6}, 10, RaidLevel::kRaid6};
  const double read_rnd = array.service_s(4096, false, false);
  const double write_rnd = array.service_s(4096, false, true);
  // Write positioning is 3x read positioning (read-old/read-parity/write).
  const double pos = 0.010 + 30.0 / 7200.0;
  EXPECT_NEAR(write_rnd - read_rnd, 2 * pos, 1e-9);
}

TEST(RaidArrayTest, SequentialWriteNoRmwPenalty) {
  RaidArray array{{0.010, 7200.0, 100e6}, 10, RaidLevel::kRaid6};
  EXPECT_NEAR(array.service_s(1 << 20, true, true),
              array.service_s(1 << 20, true, false), 1e-12);
}

TEST(LinkModelTest, TransferIsLatencyPlusBandwidth) {
  LinkModel link{10e-6, 1e9};
  EXPECT_NEAR(link.transfer_s(1e9), 1.0 + 10e-6, 1e-9);
  EXPECT_NEAR(link.transfer_s(0), 10e-6, 1e-12);
}

}  // namespace
}  // namespace ldplfs::sim
