#include "sim/station.hpp"

#include <gtest/gtest.h>

namespace ldplfs::sim {
namespace {

TEST(StationTest, SingleServerSerialises) {
  Engine engine;
  Station station(engine, "s", 1);
  double done1 = -1, done2 = -1;
  station.submit(2.0, [&] { done1 = engine.now(); });
  station.submit(3.0, [&] { done2 = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done1, 2.0);
  EXPECT_DOUBLE_EQ(done2, 5.0);  // queued behind the first
  EXPECT_EQ(station.stats().ops, 2u);
  EXPECT_DOUBLE_EQ(station.stats().busy_time, 5.0);
  EXPECT_DOUBLE_EQ(station.stats().total_wait, 2.0);
}

TEST(StationTest, MultipleServersRunConcurrently) {
  Engine engine;
  Station station(engine, "s", 2);
  double done1 = -1, done2 = -1, done3 = -1;
  station.submit(2.0, [&] { done1 = engine.now(); });
  station.submit(2.0, [&] { done2 = engine.now(); });
  station.submit(2.0, [&] { done3 = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done1, 2.0);
  EXPECT_DOUBLE_EQ(done2, 2.0);
  EXPECT_DOUBLE_EQ(done3, 4.0);  // third waits for a free server
}

TEST(StationTest, LaterArrivalsStartAtArrival) {
  Engine engine;
  Station station(engine, "s", 1);
  double done = -1;
  engine.schedule_at(10.0, [&] {
    station.submit(1.0, [&] { done = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(done, 11.0);
  EXPECT_DOUBLE_EQ(station.stats().total_wait, 0.0);
}

TEST(StationTest, UtilisationMath) {
  Engine engine;
  Station station(engine, "s", 2);
  station.submit(4.0);
  station.submit(2.0);
  engine.run();
  // busy 6s across 2 servers over a 10s horizon -> 0.3
  EXPECT_NEAR(station.utilisation(10.0), 0.3, 1e-12);
  EXPECT_EQ(station.utilisation(0.0), 0.0);
}

TEST(StationTest, InSystemTracksPopulation) {
  Engine engine;
  Station station(engine, "s", 1);
  station.submit(1.0);
  station.submit(1.0);
  station.submit(1.0);
  EXPECT_EQ(station.in_system(), 3u);
  engine.run();
  EXPECT_EQ(station.in_system(), 0u);
  EXPECT_EQ(station.stats().max_in_system, 3u);
}

TEST(StationTest, CongestionInflatesServiceAboveKnee) {
  Engine engine;
  // alpha=1, knee=2: third simultaneous request is served 1.5x slower.
  Station station(engine, "s", 1, CongestionModel{1.0, 2});
  station.submit(1.0);
  station.submit(1.0);
  double done3 = -1;
  station.submit(1.0, [&] { done3 = engine.now(); });
  engine.run();
  // Services: 1.0 (in=1), 1.0 (in=2), 1.0*(1+ (3-2)/2 )=1.5 (in=3).
  EXPECT_DOUBLE_EQ(done3, 3.5);
}

TEST(StationTest, NoCongestionBelowKnee) {
  Engine engine;
  Station station(engine, "s", 4, CongestionModel{5.0, 8});
  double done = -1;
  station.submit(1.0, [&] { done = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done, 1.0);
}

TEST(StationTest, ZeroServersClampedToOne) {
  Engine engine;
  Station station(engine, "s", 0);
  EXPECT_EQ(station.servers(), 1u);
  station.submit(1.0);
  engine.run();
  EXPECT_EQ(station.stats().ops, 1u);
}

TEST(StationTest, ResetStatsKeepsServerState) {
  Engine engine;
  Station station(engine, "s", 1);
  station.submit(5.0);
  engine.run();
  station.reset_stats();
  EXPECT_EQ(station.stats().ops, 0u);
  // Server busy-until state persists: a new request at t=5 starts there.
  double done = -1;
  station.submit(1.0, [&] { done = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done, 6.0);
}

}  // namespace
}  // namespace ldplfs::sim
