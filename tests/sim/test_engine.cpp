#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ldplfs::sim {
namespace {

TEST(EngineTest, StartsAtZeroAndEmpty) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.run(), 0.0);
}

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
}

TEST(EngineTest, TiesBreakByScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, EventsMayScheduleMoreEvents) {
  Engine engine;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) engine.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), 4.0);
  EXPECT_EQ(engine.events_processed(), 5u);
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  double seen = -1;
  engine.schedule_at(2.0, [&] {
    engine.schedule_after(0.5, [&] { seen = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(EngineTest, RunUntilLeavesLaterEventsQueued) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 2.0);  // clock advanced to the horizon
  EXPECT_FALSE(engine.empty());
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RunUntilAdvancesClockWithNoEvents) {
  Engine engine;
  engine.run_until(7.5);
  EXPECT_EQ(engine.now(), 7.5);
}

TEST(EngineTest, ResetClearsEverything) {
  Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.run();
  engine.schedule_at(10.0, [] {});
  engine.reset();
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(EngineTest, ManyEventsDeterministic) {
  auto run_once = [] {
    Engine engine;
    std::uint64_t hash = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule_at((i * 37) % 1000 * 1e-3, [&hash, i] {
        hash = hash * 31 + static_cast<std::uint64_t>(i);
      });
    }
    engine.run();
    return hash;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ldplfs::sim
