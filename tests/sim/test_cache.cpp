#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace ldplfs::sim {
namespace {

constexpr double kAbsorb = 1000.0;  // 1000 B/s ingest
constexpr double kDrain = 100.0;    // 100 B/s drain

TEST(WriteCacheTest, SmallWriteAbsorbsAtIngestSpeed) {
  WriteCache cache(1000, kAbsorb);
  cache.set_drain_bps(kDrain);
  const SimTime done = cache.admit(0.0, 500);
  EXPECT_DOUBLE_EQ(done, 0.5);  // 500 B at 1000 B/s
  EXPECT_LE(cache.occupancy(done), 500u);
}

TEST(WriteCacheTest, OccupancyDrainsOverTime) {
  WriteCache cache(1000, kAbsorb);
  cache.set_drain_bps(kDrain);
  cache.admit(0.0, 500);
  const std::uint64_t at1 = cache.occupancy(1.0);
  const std::uint64_t at4 = cache.occupancy(4.0);
  EXPECT_GT(at1, at4);
  EXPECT_EQ(cache.occupancy(100.0), 0u);
}

TEST(WriteCacheTest, OverflowBlocksAtDrainRate) {
  WriteCache cache(1000, 1e12);  // instant ingest isolates the blocking
  cache.set_drain_bps(kDrain);
  cache.admit(0.0, 1000);  // fill
  const SimTime done = cache.admit(0.0, 500);
  // 500 B overflow at 100 B/s = 5 s.
  EXPECT_NEAR(done, 5.0, 1e-6);
}

TEST(WriteCacheTest, ConcurrentOverflowsQueueOnSharedDrain) {
  WriteCache cache(1000, 1e12);
  cache.set_drain_bps(kDrain);
  cache.admit(0.0, 1000);
  const SimTime first = cache.admit(0.0, 200);
  const SimTime second = cache.admit(0.0, 200);
  // Each overflow needs 2 s of drain; the second queues behind the first.
  EXPECT_NEAR(first, 2.0, 1e-6);
  EXPECT_NEAR(second, 4.0, 1e-6);
}

TEST(WriteCacheTest, HorizonIsMonotonic) {
  WriteCache cache(1000, kAbsorb);
  cache.set_drain_bps(kDrain);
  const SimTime a = cache.admit(0.0, 400);
  // An admit "arriving" before the horizon processes at the horizon.
  const SimTime b = cache.admit(0.0, 400);
  EXPECT_GE(b, a);
}

TEST(WriteCacheTest, PerStreamLimitBindsBeforeNodeLimit) {
  WriteCache cache(10000, 1e12);
  cache.set_drain_bps(kDrain);
  cache.set_per_stream_cap(300);
  // Stream 1 may only hold 300 dirty bytes despite node headroom.
  const SimTime first = cache.admit(0.0, 300, /*stream=*/1);
  EXPECT_NEAR(first, 0.0, 1e-9);
  const SimTime second = cache.admit(first, 200, /*stream=*/1);
  EXPECT_NEAR(second, 2.0, 1e-6);  // 200 B overflow at 100 B/s
}

TEST(WriteCacheTest, IndependentStreamsGetIndependentGrants) {
  WriteCache cache(10000, 1e12);
  cache.set_drain_bps(kDrain);
  cache.set_per_stream_cap(300);
  const SimTime a = cache.admit(0.0, 300, 1);
  const SimTime b = cache.admit(a, 300, 2);  // different stream: no block
  EXPECT_NEAR(b - a, 0.0, 1e-9);
}

TEST(WriteCacheTest, StreamDirtyDrainsProportionally) {
  WriteCache cache(10000, 1e12);
  cache.set_drain_bps(kDrain);
  cache.set_per_stream_cap(300);
  cache.admit(0.0, 300, 1);
  // After 2 s, 200 B drained; stream 1 should accept ~200 more for free.
  const SimTime done = cache.admit(2.0, 200, 1);
  EXPECT_NEAR(done, 2.0, 1e-6);
}

TEST(WriteCacheTest, DrainedAtProjectsEmptyTime) {
  WriteCache cache(1000, 1e12);
  cache.set_drain_bps(kDrain);
  cache.admit(0.0, 500);
  EXPECT_NEAR(cache.drained_at(0.0), 5.0, 1e-6);
}

TEST(WriteCacheTest, ResetClearsState) {
  WriteCache cache(1000, kAbsorb);
  cache.set_drain_bps(kDrain);
  cache.admit(0.0, 800);
  cache.reset();
  EXPECT_EQ(cache.occupancy(0.0), 0u);
  const SimTime done = cache.admit(0.0, 500);
  EXPECT_DOUBLE_EQ(done, 0.5);
}

TEST(WriteCacheTest, SteadyStateThroughputEqualsDrainRate) {
  // Property: with the cache saturated, long-run admitted throughput equals
  // the drain rate regardless of write sizes.
  WriteCache cache(1000, 1e12);
  cache.set_drain_bps(kDrain);
  SimTime now = 0.0;
  std::uint64_t sent = 0;
  for (int i = 0; i < 200; ++i) {
    now = cache.admit(now, 150);
    sent += 150;
  }
  const double rate = static_cast<double>(sent - 1000) / now;
  EXPECT_NEAR(rate, kDrain, kDrain * 0.05);
}

}  // namespace
}  // namespace ldplfs::sim
