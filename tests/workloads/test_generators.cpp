// Workload-generator invariants: volumes, phase counts, topology mapping —
// the bookkeeping the figure benches depend on.
#include <gtest/gtest.h>

#include "simfs/presets.hpp"
#include "workloads/bt_io.hpp"
#include "workloads/flash_io.hpp"
#include "workloads/mpiio_test.hpp"

namespace ldplfs::workloads {
namespace {

TEST(BtTopologyTest, SmallCountsFitOneNode) {
  const auto t4 = bt_topology(4, 12);
  EXPECT_EQ(t4.nodes, 1u);
  EXPECT_EQ(t4.ppn, 4u);
  EXPECT_EQ(t4.nranks(), 4u);
}

TEST(BtTopologyTest, LargeCountsFillNodes) {
  const auto t1024 = bt_topology(1024, 12);
  EXPECT_EQ(t1024.ppn, 12u);
  EXPECT_EQ(t1024.nodes, 86u);  // ceil(1024/12)
  const auto t4096 = bt_topology(4096, 12);
  EXPECT_EQ(t4096.nodes, 342u);
}

TEST(BtClassTest, PaperVolumes) {
  // 6.4 GB and 136 GB over 20 writes (paper §IV).
  EXPECT_NEAR(static_cast<double>(bt_class_c().total_bytes), 6.4e9, 5e8);
  // Paper says "136 GB"; the generator uses 136 GiB (the NAS class D
  // output is quoted loosely in the paper) — accept either convention.
  EXPECT_NEAR(static_cast<double>(bt_class_d().total_bytes), 141e9, 6e9);
  EXPECT_EQ(bt_class_c().write_calls, 20u);
  EXPECT_EQ(bt_class_d().write_calls, 20u);
}

TEST(BtClassTest, PerProcessWriteSizesMatchPaperQuotes) {
  // "approximately 300 KB of data written by each process at each step"
  // (class C at 1024) and ~7 MB (class D at 1024), <2 MB at 4096.
  const auto c = bt_class_c();
  const double c_at_1024 = static_cast<double>(c.total_bytes) /
                           c.write_calls / 1024.0;
  EXPECT_NEAR(c_at_1024, 300e3, 60e3);
  const auto d = bt_class_d();
  const double d_at_1024 = static_cast<double>(d.total_bytes) /
                           d.write_calls / 1024.0;
  EXPECT_NEAR(d_at_1024, 7e6, 1e6);
  const double d_at_4096 = static_cast<double>(d.total_bytes) /
                           d.write_calls / 4096.0;
  EXPECT_LT(d_at_4096, 2e6);
}

TEST(BtRunTest, AccountsFullVolume) {
  const auto topo = bt_topology(64, 12);
  const auto result =
      run_bt(simfs::sierra(), topo, mpiio::Route::kLdplfs, bt_class_c());
  // Volume is divided evenly across ranks; integer division may shave a
  // sub-rank remainder.
  const std::uint64_t expected =
      bt_class_c().total_bytes / 20 / topo.nranks() * 20 * topo.nranks();
  EXPECT_EQ(result.stats.bytes_written, expected);
  EXPECT_GT(result.write_mbps, 0.0);
}

TEST(FlashIoTest, WeakScalingVolume) {
  // ~205 MB per process, regardless of scale.
  for (std::uint32_t nodes : {1u, 4u}) {
    const mpi::Topology topo{nodes, 12};
    const auto result = run_flash_io(simfs::sierra(), topo,
                                     mpiio::Route::kLdplfs, {});
    const double per_rank = static_cast<double>(result.stats.bytes_written) /
                            topo.nranks();
    EXPECT_NEAR(per_rank, 205.0 * 1048576, 5e6) << nodes;
  }
}

TEST(FlashIoTest, VariableCountDrivesPhases) {
  FlashIoParams params;
  params.num_variables = 6;
  const auto result =
      run_flash_io(simfs::sierra(), {2, 12}, mpiio::Route::kMpiio, params);
  EXPECT_EQ(result.stats.bytes_written,
            params.per_rank_bytes / 6 * 6 * 24ull);
}

TEST(MpiioTestTest, WritesAndReadsSameVolume) {
  MpiioTestParams params;
  params.per_rank_bytes = 64ull << 20;
  params.block_bytes = 8ull << 20;
  const mpi::Topology topo{4, 2};
  const auto result =
      run_mpiio_test(simfs::minerva(), topo, mpiio::Route::kLdplfs, params);
  EXPECT_EQ(result.write_stats.bytes_written,
            params.per_rank_bytes * topo.nranks());
  // Index-dropping loads are internal and excluded from the count.
  EXPECT_EQ(result.read_stats.bytes_read,
            params.per_rank_bytes * topo.nranks());
  EXPECT_GT(result.write_mbps, 0.0);
  EXPECT_GT(result.read_mbps, 0.0);
}

TEST(MpiioTestTest, PartialTrailingBlockRoundsUp) {
  MpiioTestParams params;
  params.per_rank_bytes = 20ull << 20;
  params.block_bytes = 8ull << 20;  // 3 phases: 8+8+8 scheduled
  const auto result = run_mpiio_test(simfs::minerva(), {2, 1},
                                     mpiio::Route::kMpiio, params);
  EXPECT_EQ(result.write_stats.bytes_written, (24ull << 20) * 2);
}

}  // namespace
}  // namespace ldplfs::workloads
