// Shape-regression tests: the paper's qualitative results, pinned as
// assertions. If a model change breaks who-wins or where the crossovers
// fall, these fail — the executable form of EXPERIMENTS.md.
//
// Volumes are scaled down where the shape survives it, to keep the suite
// fast; the full-volume numbers live in the bench binaries.
#include <gtest/gtest.h>

#include "simfs/presets.hpp"
#include "workloads/bt_io.hpp"
#include "workloads/flash_io.hpp"
#include "workloads/mpiio_test.hpp"

namespace ldplfs::workloads {
namespace {

using mpiio::Route;

MpiioTestParams fig3_params() {
  MpiioTestParams params;
  params.per_rank_bytes = 512ull << 20;
  params.block_bytes = 8ull << 20;
  return params;
}

// --- Fig. 3 shapes (Minerva/GPFS) ----------------------------------------

TEST(Fig3Shape, PlfsDoublesMpiioWritesAtScale) {
  const mpi::Topology topo{16, 2};
  const auto plfs =
      run_mpiio_test(simfs::minerva(), topo, Route::kRomioPlfs, fig3_params());
  const auto ufs =
      run_mpiio_test(simfs::minerva(), topo, Route::kMpiio, fig3_params());
  EXPECT_GT(plfs.write_mbps, 1.5 * ufs.write_mbps);
  EXPECT_LT(plfs.write_mbps, 4.0 * ufs.write_mbps);
}

TEST(Fig3Shape, LdplfsTracksRomio) {
  const mpi::Topology topo{8, 2};
  const auto romio =
      run_mpiio_test(simfs::minerva(), topo, Route::kRomioPlfs, fig3_params());
  const auto ldplfs =
      run_mpiio_test(simfs::minerva(), topo, Route::kLdplfs, fig3_params());
  EXPECT_NEAR(ldplfs.write_mbps / romio.write_mbps, 1.0, 0.05);
  EXPECT_NEAR(ldplfs.read_mbps / romio.read_mbps, 1.0, 0.05);
}

TEST(Fig3Shape, FuseBelowMpiioForParallelWrites) {
  // "FUSE performs worse than standard MPI-IO by 20% on average" (§III-C).
  const mpi::Topology topo{16, 2};
  const auto fuse =
      run_mpiio_test(simfs::minerva(), topo, Route::kFuse, fig3_params());
  const auto ufs =
      run_mpiio_test(simfs::minerva(), topo, Route::kMpiio, fig3_params());
  EXPECT_LT(fuse.write_mbps, ufs.write_mbps);
  EXPECT_GT(fuse.write_mbps, 0.3 * ufs.write_mbps);
}

TEST(Fig3Shape, FuseBelowRomioEverywhere) {
  for (std::uint32_t nodes : {2u, 8u, 32u}) {
    const mpi::Topology topo{nodes, 1};
    const auto fuse =
        run_mpiio_test(simfs::minerva(), topo, Route::kFuse, fig3_params());
    const auto romio = run_mpiio_test(simfs::minerva(), topo,
                                      Route::kRomioPlfs, fig3_params());
    EXPECT_LT(fuse.write_mbps, romio.write_mbps) << nodes << " nodes";
  }
}

TEST(Fig3Shape, WriteBandwidthScalesThenPlateaus) {
  MpiioTestParams params = fig3_params();
  params.per_rank_bytes = 256ull << 20;
  const auto one = run_mpiio_test(simfs::minerva(), {1, 1},
                                  Route::kLdplfs, params);
  const auto four = run_mpiio_test(simfs::minerva(), {4, 1},
                                   Route::kLdplfs, params);
  const auto sixty_four = run_mpiio_test(simfs::minerva(), {64, 1},
                                         Route::kLdplfs, params);
  EXPECT_GT(four.write_mbps, 1.5 * one.write_mbps);     // scales up...
  EXPECT_LT(sixty_four.write_mbps, 1.3 * four.write_mbps);  // ...then flat
}

TEST(Fig3Shape, NodeWiseWriteConsistentAcrossPpn) {
  // Paper: with one aggregator per node, node-wise performance is roughly
  // constant as ppn varies.
  MpiioTestParams params = fig3_params();
  params.per_rank_bytes = 128ull << 20;
  const auto ppn1 = run_mpiio_test(simfs::minerva(), {8, 1},
                                   Route::kLdplfs, params);
  params.per_rank_bytes = 64ull << 20;  // same bytes per NODE
  const auto ppn2 = run_mpiio_test(simfs::minerva(), {8, 2},
                                   Route::kLdplfs, params);
  EXPECT_NEAR(ppn2.write_mbps / ppn1.write_mbps, 1.0, 0.25);
}

TEST(Fig3Shape, ReadsRiseWithNodeCount) {
  const auto small = run_mpiio_test(simfs::minerva(), {2, 1},
                                    Route::kLdplfs, fig3_params());
  const auto large = run_mpiio_test(simfs::minerva(), {32, 1},
                                    Route::kLdplfs, fig3_params());
  EXPECT_GT(large.read_mbps, small.read_mbps);
}

// --- Fig. 4 shapes (BT on Sierra/Lustre) ----------------------------------

TEST(Fig4Shape, PlfsFarAheadOfMpiioForSmallCachedWrites) {
  // Class C at 1,024 cores: ~300 KB per process per call — the write-cache
  // regime where the paper reports 10-20x.
  const auto topo = bt_topology(1024, 12);
  const auto plfs =
      run_bt(simfs::sierra(), topo, Route::kLdplfs, bt_class_c());
  const auto ufs = run_bt(simfs::sierra(), topo, Route::kMpiio, bt_class_c());
  EXPECT_GT(plfs.write_mbps, 8.0 * ufs.write_mbps);
}

TEST(Fig4Shape, ClassDDipsAt1024AndRecoversAt4096) {
  const auto d = bt_class_d();
  const auto at256 =
      run_bt(simfs::sierra(), bt_topology(256, 12), Route::kLdplfs, d);
  const auto at1024 =
      run_bt(simfs::sierra(), bt_topology(1024, 12), Route::kLdplfs, d);
  const auto at4096 =
      run_bt(simfs::sierra(), bt_topology(4096, 12), Route::kLdplfs, d);
  EXPECT_LT(at1024.write_mbps, 0.5 * at256.write_mbps);   // the dip
  EXPECT_GT(at4096.write_mbps, 2.0 * at1024.write_mbps);  // the recovery
}

TEST(Fig4Shape, DipStaysAboveOrNearMpiio) {
  const auto topo = bt_topology(1024, 12);
  const auto plfs =
      run_bt(simfs::sierra(), topo, Route::kLdplfs, bt_class_d());
  const auto ufs = run_bt(simfs::sierra(), topo, Route::kMpiio, bt_class_d());
  // "performance that is equivalent to vanilla MPI-IO" — same ballpark.
  EXPECT_GT(plfs.write_mbps, 0.5 * ufs.write_mbps);
  EXPECT_LT(plfs.write_mbps, 4.0 * ufs.write_mbps);
}

// --- Fig. 5 shapes (FLASH-IO on Sierra/Lustre) ----------------------------

TEST(Fig5Shape, MpiioRisesToPlateau) {
  const auto at12 = run_flash_io(simfs::sierra(), {1, 12}, Route::kMpiio, {});
  const auto at192 =
      run_flash_io(simfs::sierra(), {16, 12}, Route::kMpiio, {});
  const auto at3072 =
      run_flash_io(simfs::sierra(), {256, 12}, Route::kMpiio, {});
  EXPECT_GT(at192.write_mbps, 1.5 * at12.write_mbps);
  EXPECT_NEAR(at3072.write_mbps / at192.write_mbps, 1.0, 0.15);
}

TEST(Fig5Shape, PlfsPeaksMidScaleThenCollapsesBelowMpiio) {
  const auto at12 =
      run_flash_io(simfs::sierra(), {1, 12}, Route::kRomioPlfs, {});
  const auto at192 =
      run_flash_io(simfs::sierra(), {16, 12}, Route::kRomioPlfs, {});
  const auto at3072 =
      run_flash_io(simfs::sierra(), {256, 12}, Route::kRomioPlfs, {});
  const auto mpiio_at3072 =
      run_flash_io(simfs::sierra(), {256, 12}, Route::kMpiio, {});

  EXPECT_GT(at192.write_mbps, 3.0 * at12.write_mbps);  // sharp rise
  EXPECT_LT(at3072.write_mbps, 0.25 * at192.write_mbps);  // collapse
  EXPECT_LT(at3072.write_mbps, mpiio_at3072.write_mbps);  // below MPI-IO
}

TEST(Fig5Shape, PlfsWinsAtModerateScale) {
  // Up to ~16 nodes PLFS is the clear winner (the paper's pitch).
  const auto plfs =
      run_flash_io(simfs::sierra(), {8, 12}, Route::kRomioPlfs, {});
  const auto ufs = run_flash_io(simfs::sierra(), {8, 12}, Route::kMpiio, {});
  EXPECT_GT(plfs.write_mbps, 2.0 * ufs.write_mbps);
}

TEST(Fig5Shape, CollapseNeedsTheDedicatedMds) {
  // Counterfactual: the same workload on a GPFS-like metadata layout (and
  // thrash-free backend) does not collapse below MPI-IO.
  auto cfg = simfs::sierra();
  cfg.dedicated_mds = false;
  cfg.stream_thrash_alpha = 0.0;
  const auto plfs = run_flash_io(cfg, {256, 12}, Route::kRomioPlfs, {});
  const auto ufs = run_flash_io(cfg, {256, 12}, Route::kMpiio, {});
  EXPECT_GT(plfs.write_mbps, ufs.write_mbps);
}

// --- determinism -----------------------------------------------------------

TEST(SimulationDeterminism, IdenticalRunsIdenticalNumbers) {
  const auto a = run_flash_io(simfs::sierra(), {16, 12}, Route::kLdplfs, {});
  const auto b = run_flash_io(simfs::sierra(), {16, 12}, Route::kLdplfs, {});
  EXPECT_DOUBLE_EQ(a.write_mbps, b.write_mbps);
}

}  // namespace
}  // namespace ldplfs::workloads
