#include "simfs/report.hpp"

#include <gtest/gtest.h>

#include "mpiio/driver.hpp"
#include "simfs/presets.hpp"

namespace ldplfs::simfs {
namespace {

TEST(ResourceReportTest, FreshClusterIsIdle) {
  ClusterModel cluster(minerva());
  const auto report = collect_report(cluster);
  EXPECT_EQ(report.horizon_s, 0.0);
  ASSERT_EQ(report.data_servers.size(), 2u);
  EXPECT_EQ(report.data_servers[0].ops, 0u);
  EXPECT_EQ(report.metadata.ops, 0u);
  EXPECT_EQ(report.cached_bytes, 0u);
}

TEST(ResourceReportTest, SyncTrafficLandsOnDataStations) {
  ClusterModel cluster(minerva());
  mpiio::IoDriver driver(cluster, {4, 1}, {mpiio::Route::kMpiio});
  driver.open(true);
  driver.write_collective(8 << 20, 0);
  driver.close();

  const auto report = collect_report(cluster);
  std::uint64_t data_ops = 0;
  for (const auto& line : report.data_servers) data_ops += line.ops;
  EXPECT_GT(data_ops, 0u);            // locked sync writes hit the servers
  EXPECT_GT(report.metadata.ops, 0u);  // open/close metadata
  EXPECT_EQ(report.cached_bytes, 0u);  // shared-file path never caches
  EXPECT_GT(report.horizon_s, 0.0);
}

TEST(ResourceReportTest, PlfsTrafficTakesCachedPath) {
  ClusterModel cluster(minerva());
  mpiio::IoDriver driver(cluster, {4, 1}, {mpiio::Route::kLdplfs});
  driver.open(true);
  driver.write_collective(8 << 20, 0);
  driver.close();

  const auto report = collect_report(cluster);
  EXPECT_EQ(report.cached_bytes, 8ull * (1 << 20) * 4 + 4 * 48 /*index*/);
  std::uint64_t data_ops = 0;
  for (const auto& line : report.data_servers) data_ops += line.ops;
  EXPECT_EQ(data_ops, 0u);  // fluid drain, no station events
}

TEST(ResourceReportTest, BottleneckPicksBusiestStation) {
  ClusterModel cluster(sierra());
  mpiio::IoDriver driver(cluster, {8, 12}, {mpiio::Route::kMpiio});
  driver.open(true);
  driver.write_collective(4 << 20, 0);
  driver.close();
  const auto report = collect_report(cluster);
  const auto* hot = report.bottleneck();
  ASSERT_NE(hot, nullptr);
  for (const auto& line : report.data_servers) {
    EXPECT_GE(hot->utilisation, line.utilisation);
  }
}

TEST(ResourceReportTest, PrintsWithoutCrashing) {
  ClusterModel cluster(sierra());
  mpiio::IoDriver driver(cluster, {2, 2}, {mpiio::Route::kLdplfs});
  driver.open(true);
  driver.write_collective(1 << 20, 0);
  driver.close();
  const auto report = collect_report(cluster);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  report.print(sink);
  EXPECT_GT(std::ftell(sink), 100);  // produced a real table
  std::fclose(sink);
}

}  // namespace
}  // namespace ldplfs::simfs
