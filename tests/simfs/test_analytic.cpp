// Validation of the closed-form model against the discrete-event simulator:
// regimes must classify correctly, the win/lose answer must agree, and
// predicted bandwidths must land within a factor band of the simulated
// ones across the paper's operating points.
#include "simfs/analytic.hpp"

#include <gtest/gtest.h>

#include "simfs/presets.hpp"
#include "workloads/bt_io.hpp"
#include "workloads/flash_io.hpp"

namespace ldplfs::simfs {
namespace {

/// Simulate FLASH-IO-shaped work with the DES for comparison.
double simulate_plfs(const ClusterConfig& config, const WorkloadShape& shape) {
  ClusterModel cluster(config);
  mpiio::DriverOptions options;
  options.route = mpiio::Route::kRomioPlfs;
  options.collective_buffering = !shape.independent_writers;
  mpiio::IoDriver driver(cluster, {shape.nodes, shape.ppn}, options);
  driver.open(true);
  for (std::uint32_t phase = 0; phase < shape.phases; ++phase) {
    if (phase != 0) driver.compute(shape.compute_between_phases_s);
    if (shape.independent_writers) {
      driver.write_independent(shape.bytes_per_rank_per_phase, phase);
    } else {
      driver.write_collective(shape.bytes_per_rank_per_phase, phase);
    }
  }
  driver.close();
  return driver.stats().write_bandwidth_mbps();
}

double simulate_mpiio(const ClusterConfig& config,
                      const WorkloadShape& shape) {
  ClusterModel cluster(config);
  mpiio::DriverOptions options;
  options.route = mpiio::Route::kMpiio;
  options.collective_buffering = !shape.independent_writers;
  mpiio::IoDriver driver(cluster, {shape.nodes, shape.ppn}, options);
  driver.open(true);
  for (std::uint32_t phase = 0; phase < shape.phases; ++phase) {
    if (phase != 0) driver.compute(shape.compute_between_phases_s);
    if (shape.independent_writers) {
      driver.write_independent(shape.bytes_per_rank_per_phase, phase);
    } else {
      driver.write_collective(shape.bytes_per_rank_per_phase, phase);
    }
  }
  driver.close();
  return driver.stats().write_bandwidth_mbps();
}

WorkloadShape flash_shape(std::uint32_t nodes) {
  WorkloadShape shape;
  shape.nodes = nodes;
  shape.ppn = 12;
  shape.bytes_per_rank_per_phase = (205ull << 20) / 24;
  shape.phases = 24;
  shape.compute_between_phases_s = 0.02;
  shape.independent_writers = true;
  return shape;
}

TEST(AnalyticModelTest, RegimeNames) {
  EXPECT_STREQ(regime_name(Regime::kAbsorb), "absorb");
  EXPECT_STREQ(regime_name(Regime::kDrain), "drain");
  EXPECT_STREQ(regime_name(Regime::kSync), "sync");
}

TEST(AnalyticModelTest, FlashIoIsDrainBound) {
  // 205 MB per rank dwarfs any grant: drain regime everywhere.
  for (std::uint32_t nodes : {1u, 16u, 256u}) {
    const auto p = predict_plfs(sierra(), flash_shape(nodes));
    EXPECT_EQ(p.regime, Regime::kDrain) << nodes << " nodes";
  }
}

TEST(AnalyticModelTest, BtClassCAt1024IsAbsorbBound) {
  // ~300 KB per rank per call, 6 MB per rank total: fits the 32 MiB grant.
  WorkloadShape shape;
  shape.nodes = 86;
  shape.ppn = 12;
  shape.bytes_per_rank_per_phase = 300 << 10;
  shape.phases = 20;
  shape.compute_between_phases_s = 0.12;
  const auto p = predict_plfs(sierra(), shape);
  EXPECT_EQ(p.regime, Regime::kAbsorb);
}

TEST(AnalyticModelTest, PredictionWithinBandOfSimulation) {
  // The model must land within 2.5x of the DES across scales — loose, but
  // tight enough for deployment decisions; the classification tests below
  // are the strict ones.
  for (std::uint32_t nodes : {4u, 16u, 64u, 256u}) {
    const auto shape = flash_shape(nodes);
    const double predicted = predict_plfs(sierra(), shape).bandwidth_mbps;
    const double simulated = simulate_plfs(sierra(), shape);
    EXPECT_LT(predicted, simulated * 2.5) << nodes << " nodes";
    EXPECT_GT(predicted, simulated / 2.5) << nodes << " nodes";
  }
}

TEST(AnalyticModelTest, MpiioPredictionWithinBand) {
  for (std::uint32_t nodes : {4u, 64u, 256u}) {
    const auto shape = flash_shape(nodes);
    const double predicted = predict_mpiio(sierra(), shape).bandwidth_mbps;
    const double simulated = simulate_mpiio(sierra(), shape);
    EXPECT_LT(predicted, simulated * 2.5) << nodes << " nodes";
    EXPECT_GT(predicted, simulated / 2.5) << nodes << " nodes";
  }
}

TEST(AnalyticModelTest, WinLoseClassificationMatchesSimulation) {
  // The paper's deployment question: the model and the DES must agree on
  // whether PLFS helps, at every FLASH-IO scale including the collapse.
  // Points where the two routes are within 15% of each other are ties
  // (the Fig. 5 crossover itself sits on one) and either answer is right.
  for (std::uint32_t nodes : {1u, 4u, 16u, 64u, 128u, 256u}) {
    const auto shape = flash_shape(nodes);
    const double sim_plfs = simulate_plfs(sierra(), shape);
    const double sim_ufs = simulate_mpiio(sierra(), shape);
    if (sim_plfs > 0.85 * sim_ufs && sim_plfs < 1.15 * sim_ufs) continue;
    const bool model_says_win = plfs_speedup(sierra(), shape) > 1.0;
    const bool sim_says_win = sim_plfs > sim_ufs;
    EXPECT_EQ(model_says_win, sim_says_win) << nodes << " nodes";
  }
}

TEST(AnalyticModelTest, PredictsTheFig5Collapse) {
  // Rise then collapse, straight from algebra.
  const double at16 = predict_plfs(sierra(), flash_shape(16)).bandwidth_mbps;
  const double at256 =
      predict_plfs(sierra(), flash_shape(256)).bandwidth_mbps;
  const double mpiio_at256 =
      predict_mpiio(sierra(), flash_shape(256)).bandwidth_mbps;
  EXPECT_GT(at16, 3.0 * at256);       // collapse
  EXPECT_LT(at256, mpiio_at256);      // below MPI-IO at scale
  EXPECT_GT(plfs_speedup(sierra(), flash_shape(8)), 1.5);  // wins mid-scale
}

TEST(AnalyticModelTest, MinervaPlfsWinIsModerate) {
  // Fig. 3's regime: ~2x on the GPFS machine.
  WorkloadShape shape;
  shape.nodes = 16;
  shape.ppn = 1;
  shape.bytes_per_rank_per_phase = 8 << 20;
  shape.phases = 128;
  shape.independent_writers = false;  // collective buffering
  const double speedup = plfs_speedup(minerva(), shape);
  EXPECT_GT(speedup, 1.3);
  EXPECT_LT(speedup, 5.0);
}

TEST(AnalyticModelTest, MetaTimeGrowsWithRanks) {
  const auto small = predict_plfs(sierra(), flash_shape(4));
  const auto large = predict_plfs(sierra(), flash_shape(256));
  EXPECT_GT(large.meta_time_s, small.meta_time_s);
}

TEST(AnalyticModelTest, BurstBufferWhatIf) {
  // Remove thrash (the cluster_whatif scenario): the model should flip the
  // 3,072-core answer from lose to win, matching the simulator's answer.
  auto fixed = sierra();
  fixed.stream_thrash_alpha = 0.0;
  EXPECT_LT(plfs_speedup(sierra(), flash_shape(256)), 1.0);
  EXPECT_GT(plfs_speedup(fixed, flash_shape(256)), 1.0);
}

}  // namespace
}  // namespace ldplfs::simfs
