#include "simfs/cluster.hpp"

#include <gtest/gtest.h>

#include "simfs/presets.hpp"

namespace ldplfs::simfs {
namespace {

ClusterConfig tiny_config() {
  ClusterConfig c;
  c.name = "tiny";
  c.nodes = 4;
  c.io_servers = 2;
  c.server_array.effective_streaming_bps = 100e6;
  c.server_nic = {1e-6, 1e9};
  c.client_nic = {1e-6, 1e9};
  c.cache_absorb_bps = 1e9;
  c.client_cache_bytes = 100 << 20;
  c.meta_op_s = 1e-3;
  c.lock_handoff_s = 10e-3;
  c.stripe_bytes = 1 << 20;
  return c;
}

RankOp write_op(std::uint64_t bytes, std::uint64_t file, bool locked = false) {
  RankOp op;
  op.kind = OpKind::kWrite;
  op.bytes = bytes;
  op.file = file;
  op.locked = locked;
  return op;
}

TEST(ClusterModelTest, EmptyPhaseIsZeroDuration) {
  ClusterModel cluster(tiny_config());
  const auto result = cluster.run_phase({});
  EXPECT_EQ(result.duration_s, 0.0);
  EXPECT_EQ(result.bytes_written, 0u);
}

TEST(ClusterModelTest, PhaseAccountsBytesAndMetaOps) {
  ClusterModel cluster(tiny_config());
  RankProgram program;
  program.rank = 0;
  program.node = 0;
  program.ops.push_back({OpKind::kMetaCreate, 0, 1, 0, true, false, false,
                         false, 0.0});
  program.ops.push_back(write_op(1000, 1));
  RankOp read;
  read.kind = OpKind::kRead;
  read.bytes = 500;
  read.file = 1;
  program.ops.push_back(read);
  const auto result = cluster.run_phase({program});
  EXPECT_EQ(result.bytes_written, 1000u);
  EXPECT_EQ(result.bytes_read, 500u);
  EXPECT_EQ(result.meta_ops, 1u);
  EXPECT_GT(result.duration_s, 0.0);
}

TEST(ClusterModelTest, CachedWriteFasterThanSynchronous) {
  auto cfg = tiny_config();
  ClusterModel cluster(cfg);
  RankProgram cached;
  cached.rank = 0;
  cached.node = 0;
  cached.ops.push_back(write_op(8 << 20, 1));

  RankProgram sync = cached;
  sync.ops[0].synchronous = true;
  sync.ops[0].file = 2;

  const double cached_s = cluster.run_phase({cached}).duration_s;
  const double sync_s = cluster.run_phase({sync}).duration_s;
  EXPECT_LT(cached_s, sync_s);
}

TEST(ClusterModelTest, LockHandoffChargedOnOwnerChange) {
  auto cfg = tiny_config();
  ClusterModel cluster(cfg);

  // Same rank writing the same stripe twice: one handoff (first touch).
  RankProgram same;
  same.rank = 1;
  same.node = 0;
  same.ops.push_back(write_op(4096, 7, true));
  same.ops.push_back(write_op(4096, 7, true));
  const double same_owner_s = cluster.run_phase({same}).duration_s;

  // Two ranks alternating on one stripe: handoff each time.
  cluster.reset_locks();
  RankProgram a;
  a.rank = 1;
  a.node = 0;
  a.ops.push_back(write_op(4096, 8, true));
  RankProgram b;
  b.rank = 2;
  b.node = 1;
  b.ops.push_back(write_op(4096, 8, true));
  const double contended_s = cluster.run_phase({a, b}).duration_s;

  // Contended case pays two handoffs serialised on the lock domain.
  EXPECT_GT(contended_s, same_owner_s);
}

TEST(ClusterModelTest, MetadataSerialisesOnDedicatedMds) {
  auto cfg = tiny_config();
  cfg.dedicated_mds = true;
  ClusterModel dedicated(cfg);
  cfg.dedicated_mds = false;
  ClusterModel distributed(cfg);

  std::vector<RankProgram> programs;
  for (std::uint32_t r = 0; r < 8; ++r) {
    RankProgram p;
    p.rank = r;
    p.node = r % 4;
    p.ops.push_back({OpKind::kMetaCreate, 0, r, 0, true, false, false, false,
                     0.0});
    programs.push_back(p);
  }
  const double mds_s = dedicated.run_phase(programs).duration_s;
  const double dist_s = distributed.run_phase(programs).duration_s;
  // 8 creates: serialised on 1 MDS vs spread over 2 servers.
  EXPECT_NEAR(mds_s, 8e-3, 1e-6);
  EXPECT_NEAR(dist_s, 4e-3, 1e-6);
}

TEST(ClusterModelTest, ThrashSlowsManyStreamPhases) {
  auto cfg = tiny_config();
  cfg.stream_thrash_alpha = 1.0;
  cfg.streams_knee_per_server = 2;
  cfg.client_cache_bytes = 1 << 20;  // force drain-bound behaviour
  ClusterModel cluster(cfg);

  auto make_programs = [&](std::uint32_t nstreams) {
    std::vector<RankProgram> programs;
    for (std::uint32_t r = 0; r < nstreams; ++r) {
      RankProgram p;
      p.rank = r;
      p.node = r % 4;
      p.ops.push_back(write_op(16 << 20, 100 + r));
      programs.push_back(p);
    }
    return programs;
  };
  // 2 streams: below knee. 32 streams: 16/server, far above knee of 2.
  const double few_s = cluster.run_phase(make_programs(2)).duration_s /
                       2.0;  // per-stream time
  ClusterModel cluster2(cfg);
  const double many_s = cluster2.run_phase(make_programs(32)).duration_s /
                        32.0;
  EXPECT_GT(many_s, few_s);
}

TEST(ClusterModelTest, ServerPlacementIsDeterministicAndInRange) {
  ClusterModel cluster(tiny_config());
  for (std::uint64_t f = 0; f < 50; ++f) {
    for (std::uint64_t off = 0; off < 4; ++off) {
      const auto s = cluster.server_for(f, off << 20);
      EXPECT_LT(s, 2u);
      EXPECT_EQ(s, cluster.server_for(f, off << 20));
    }
  }
}

TEST(ClusterModelTest, StripesSpreadAcrossServers) {
  ClusterModel cluster(tiny_config());
  // Consecutive stripes of one file alternate servers (round robin).
  const auto s0 = cluster.server_for(5, 0);
  const auto s1 = cluster.server_for(5, 1 << 20);
  EXPECT_NE(s0, s1);
}

TEST(ClusterModelTest, AdvanceTimeDrainsCaches) {
  auto cfg = tiny_config();
  ClusterModel cluster(cfg);
  RankProgram p;
  p.rank = 0;
  p.node = 0;
  p.ops.push_back(write_op(50 << 20, 1));
  cluster.run_phase({p});
  const auto before = cluster.node_cache(0).occupancy(cluster.now());
  cluster.advance_time(10.0);
  const auto after = cluster.node_cache(0).occupancy(cluster.now());
  EXPECT_LT(after, before);
}

TEST(ClusterModelTest, ComputeOpTakesItsTime) {
  ClusterModel cluster(tiny_config());
  RankProgram p;
  p.rank = 0;
  p.node = 0;
  RankOp op;
  op.kind = OpKind::kCompute;
  op.cpu_s = 1.25;
  p.ops.push_back(op);
  EXPECT_DOUBLE_EQ(cluster.run_phase({p}).duration_s, 1.25);
}

TEST(PresetTest, MinervaMatchesTableOne) {
  const auto cfg = minerva();
  EXPECT_EQ(cfg.nodes, 258u);
  EXPECT_EQ(cfg.cores_per_node, 12u);
  EXPECT_EQ(cfg.io_servers, 2u);
  EXPECT_FALSE(cfg.dedicated_mds);
  EXPECT_EQ(cfg.server_array.level, sim::RaidLevel::kRaid6);
}

TEST(PresetTest, SierraMatchesTableOne) {
  const auto cfg = sierra();
  EXPECT_EQ(cfg.nodes, 1849u);
  EXPECT_EQ(cfg.io_servers, 24u);
  EXPECT_TRUE(cfg.dedicated_mds);
  EXPECT_GT(cfg.stream_thrash_alpha, 0.0);
  EXPECT_GT(cfg.per_stream_cache_bytes, 0u);
}

TEST(PresetTest, ThrashFactorShape) {
  const auto cfg = sierra();
  EXPECT_DOUBLE_EQ(cfg.thrash_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(cfg.thrash_factor(24 * 32), 1.0);  // exactly at knee
  EXPECT_GT(cfg.thrash_factor(24 * 64), 1.0);
  EXPECT_GT(cfg.thrash_factor(24 * 256), cfg.thrash_factor(24 * 64));
}

TEST(PresetTest, SpecsPrintable) {
  const auto specs = all_platform_specs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "Minerva");
  EXPECT_EQ(specs[1].name, "Sierra");
  EXPECT_EQ(specs[1].data_disks, 3600);
}

}  // namespace
}  // namespace ldplfs::simfs
