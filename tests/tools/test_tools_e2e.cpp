// End-to-end tests of the ldp-* command-line tools: spawn the real
// binaries against scratch containers and check exit codes and output —
// the executable form of the paper's §III-D claim that PLFS containers can
// be handled with ordinary tool workflows, no FUSE needed.
//
// Binary locations come in via -DLDPLFS_TOOLS_DIR.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include "common/md5.hpp"
#include "common/stats.hpp"
#include "plfs/compaction.hpp"
#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace {

using ldplfs::testing::TempDir;

struct ToolResult {
  int exit_code = -1;
  std::string output;  // stdout
};

ToolResult run_tool(const std::string& tool,
                    const std::vector<std::string>& args) {
  int out_pipe[2];
  EXPECT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> argv;
    const std::string bin = std::string(LDPLFS_TOOLS_DIR) + "/" + tool;
    argv.push_back(const_cast<char*>(bin.c_str()));
    for (const auto& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(bin.c_str(), argv.data());
    _exit(127);
  }
  ::close(out_pipe[1]);
  ToolResult result;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(out_pipe[0], buf, sizeof buf)) > 0) {
    result.output.append(buf, static_cast<std::size_t>(n));
  }
  ::close(out_pipe[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// Create a container holding `content` at mount/name.
void make_container(const std::string& path, const std::string& content) {
  auto fd = ldplfs::plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(
      fd.value()
          ->write({reinterpret_cast<const std::byte*>(content.data()),
                   content.size()},
                  0, 1)
          .ok());
  ASSERT_TRUE(ldplfs::plfs::plfs_close(fd.value(), 1).ok());
}

class ToolsE2eTest : public ::testing::Test {
 protected:
  ToolsE2eTest() : mount_flag_("--mount=" + mount_.path()) {}
  TempDir mount_;
  TempDir scratch_;
  std::string mount_flag_;
};

TEST_F(ToolsE2eTest, CatPrintsLogicalContent) {
  make_container(mount_.sub("f.dat"), "hello tools\n");
  const auto result = run_tool("ldp-cat", {mount_flag_, mount_.sub("f.dat")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.output, "hello tools\n");
}

TEST_F(ToolsE2eTest, Md5sumMatchesLibraryDigest) {
  const std::string content = "digest me please";
  make_container(mount_.sub("f.dat"), content);
  const auto result =
      run_tool("ldp-md5sum", {mount_flag_, mount_.sub("f.dat")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find(ldplfs::Md5::hex_digest(content)),
            std::string::npos);
}

TEST_F(ToolsE2eTest, CpExtractsAndInjects) {
  const std::string content(10000, 'Q');
  make_container(mount_.sub("src.dat"), content);

  // Container -> flat.
  auto result = run_tool(
      "ldp-cp", {mount_flag_, mount_.sub("src.dat"), scratch_.sub("flat")});
  EXPECT_EQ(result.exit_code, 0);
  auto flat = ldplfs::posix::read_file(scratch_.sub("flat"));
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.value(), content);

  // Flat -> container.
  result = run_tool(
      "ldp-cp", {mount_flag_, scratch_.sub("flat"), mount_.sub("back.dat")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(ldplfs::plfs::is_container(mount_.sub("back.dat")));
  const auto sum =
      run_tool("ldp-md5sum", {mount_flag_, mount_.sub("back.dat")});
  EXPECT_NE(sum.output.find(ldplfs::Md5::hex_digest(content)),
            std::string::npos);
}

TEST_F(ToolsE2eTest, GrepCountsMatches) {
  make_container(mount_.sub("log.dat"),
                 "one NEEDLE\ntwo hay\nthree NEEDLE again\n");
  const auto result = run_tool(
      "ldp-grep", {mount_flag_, "-c", "NEEDLE", mount_.sub("log.dat")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.output, "2\n");
}

TEST_F(ToolsE2eTest, GrepNoMatchExitsOne) {
  make_container(mount_.sub("log.dat"), "nothing here\n");
  const auto result = run_tool(
      "ldp-grep", {mount_flag_, "absent", mount_.sub("log.dat")});
  EXPECT_EQ(result.exit_code, 1);
}

TEST_F(ToolsE2eTest, GrepFixedStringMode) {
  make_container(mount_.sub("log.dat"), "a.b\naxb\n");
  const auto fixed = run_tool(
      "ldp-grep", {mount_flag_, "-c", "-F", "a.b", mount_.sub("log.dat")});
  EXPECT_EQ(fixed.output, "1\n");
  const auto regex = run_tool(
      "ldp-grep", {mount_flag_, "-c", "a.b", mount_.sub("log.dat")});
  EXPECT_EQ(regex.output, "2\n");
}

TEST_F(ToolsE2eTest, InspectReportsStructure) {
  make_container(mount_.sub("f.dat"), "0123456789");
  const auto result =
      run_tool("ldp-inspect", {mount_flag_, mount_.sub("f.dat")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("data droppings:  1"), std::string::npos);
  EXPECT_NE(result.output.find("logical size: 10"), std::string::npos);
}

TEST_F(ToolsE2eTest, InspectRejectsNonContainer) {
  ASSERT_TRUE(ldplfs::posix::write_file(mount_.sub("plain"), "x").ok());
  const auto result =
      run_tool("ldp-inspect", {mount_flag_, mount_.sub("plain")});
  EXPECT_EQ(result.exit_code, 1);
}

TEST_F(ToolsE2eTest, FlattenReducesIndexDroppings) {
  const std::string path = mount_.sub("multi.dat");
  auto fd = ldplfs::plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  for (int w = 0; w < 4; ++w) {
    std::string block(100, static_cast<char>('0' + w));
    ASSERT_TRUE(
        fd.value()
            ->write({reinterpret_cast<const std::byte*>(block.data()),
                     block.size()},
                    w * 100, 50 + w)
            .ok());
  }
  for (int w = 0; w < 4; ++w) {
    ASSERT_TRUE(fd.value()->close(50 + w).ok());
  }
  EXPECT_EQ(run_tool("ldp-flatten", {mount_flag_, path}).exit_code, 0);
  auto droppings = ldplfs::plfs::find_index_droppings(path);
  ASSERT_TRUE(droppings.ok());
  EXPECT_EQ(droppings.value().size(), 1u);
}

TEST_F(ToolsE2eTest, CompactReclaimsOverwrites) {
  const std::string path = mount_.sub("ow.dat");
  auto fd = ldplfs::plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  for (int i = 0; i < 10; ++i) {
    std::string block(512, static_cast<char>('a' + i));
    ASSERT_TRUE(
        fd.value()
            ->write({reinterpret_cast<const std::byte*>(block.data()),
                     block.size()},
                    0, 1)
            .ok());
  }
  ASSERT_TRUE(ldplfs::plfs::plfs_close(fd.value(), 1).ok());
  const auto result = run_tool("ldp-compact", {mount_flag_, path});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("reclaimed"), std::string::npos);
  auto attr = ldplfs::plfs::plfs_getattr(path);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 512u);
}

TEST_F(ToolsE2eTest, LsShowsContainersAsFiles) {
  make_container(mount_.sub("a.dat"), "0123");
  ASSERT_TRUE(ldplfs::posix::make_dir(mount_.sub("realdir")).ok());
  const auto result = run_tool("ldp-ls", {mount_flag_, "-l", mount_.path()});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("-plfs"), std::string::npos);
  EXPECT_NE(result.output.find("a.dat"), std::string::npos);
  EXPECT_NE(result.output.find("realdir/"), std::string::npos);
}

TEST_F(ToolsE2eTest, RecoverClearsStaleRegistrations) {
  const std::string path = mount_.sub("crashed.dat");
  make_container(path, "content");
  // Stale openhost left by a crashed writer.
  ldplfs::plfs::ContainerLayout layout(path);
  ldplfs::plfs::WriterId ghost{"deadhost", 77,
                               ldplfs::plfs::next_timestamp()};
  ASSERT_TRUE(
      ldplfs::posix::write_file(layout.openhost_path(ghost), "").ok());

  const auto result = run_tool("ldp-recover", {mount_flag_, path});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("1 stale registration"), std::string::npos);
  auto hosts = ldplfs::plfs::read_open_hosts(path);
  ASSERT_TRUE(hosts.ok());
  EXPECT_TRUE(hosts.value().empty());
}

TEST_F(ToolsE2eTest, RecoverReportsOrphansAndTornTails) {
  const std::string path = mount_.sub("wounded.dat");
  make_container(path, "content");
  // Torn tail: 13 junk bytes appended to the (only) index dropping.
  auto indexes = ldplfs::plfs::find_index_droppings(path);
  ASSERT_TRUE(indexes.ok());
  ASSERT_EQ(indexes.value().size(), 1u);
  auto whole = ldplfs::posix::read_file(indexes.value()[0]);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(ldplfs::posix::write_file(
                  indexes.value()[0], whole.value() + std::string(13, '\x7f'))
                  .ok());
  // Orphan: a data dropping no index ever described.
  ldplfs::plfs::ContainerLayout layout(path);
  ldplfs::plfs::WriterId ghost{"deadhost", 77,
                               ldplfs::plfs::next_timestamp()};
  ASSERT_TRUE(
      ldplfs::posix::make_dirs(layout.hostdir_for(ghost.host)).ok());
  ASSERT_TRUE(ldplfs::posix::write_file(layout.data_dropping_path(ghost),
                                        "lost bytes")
                  .ok());

  // ldp-inspect surveys the damage read-only...
  const auto inspect = run_tool("ldp-inspect", {mount_flag_, path});
  EXPECT_EQ(inspect.exit_code, 0);
  EXPECT_NE(inspect.output.find("torn index tail: 13 byte(s)"),
            std::string::npos);
  EXPECT_NE(inspect.output.find("ORPHANED data dropping"), std::string::npos);

  // ...and ldp-recover repairs it, reporting rather than hiding the loss.
  const auto result = run_tool("ldp-recover", {mount_flag_, path});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("trimmed 13 torn index tail byte(s)"),
            std::string::npos);
  EXPECT_NE(result.output.find("1 orphaned data dropping(s) kept"),
            std::string::npos);
  // Data survives; logical content is intact.
  EXPECT_TRUE(ldplfs::posix::exists(layout.data_dropping_path(ghost)));
  const auto cat = run_tool("ldp-cat", {mount_flag_, path});
  EXPECT_EQ(cat.exit_code, 0);
  EXPECT_EQ(cat.output, "content");
}

TEST_F(ToolsE2eTest, MkplfsCreatesBackend) {
  const std::string dir = scratch_.sub("newbackend");
  const auto result = run_tool("ldp-mkplfs", {dir});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(ldplfs::posix::is_directory(dir));
  EXPECT_NE(result.output.find("LDPLFS_MOUNTS"), std::string::npos);
}

TEST_F(ToolsE2eTest, ToolsWorkOnPlainFilesToo) {
  ASSERT_TRUE(
      ldplfs::posix::write_file(scratch_.sub("plain.txt"), "plain\n").ok());
  const auto result =
      run_tool("ldp-cat", {mount_flag_, scratch_.sub("plain.txt")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.output, "plain\n");
}

TEST_F(ToolsE2eTest, HelpFlagExitsZeroEverywhere) {
  for (const char* tool :
       {"ldp-cp", "ldp-cat", "ldp-grep", "ldp-md5sum", "ldp-inspect",
        "ldp-flatten", "ldp-compact", "ldp-ls", "ldp-recover"}) {
    EXPECT_EQ(run_tool(tool, {"--help"}).exit_code, 0) << tool;
  }
}

TEST_F(ToolsE2eTest, NoArgsIsUsageError) {
  for (const char* tool :
       {"ldp-cp", "ldp-cat", "ldp-grep", "ldp-md5sum", "ldp-inspect",
        "ldp-flatten", "ldp-compact", "ldp-ls", "ldp-recover"}) {
    EXPECT_EQ(run_tool(tool, {}).exit_code, 2) << tool;
  }
}

TEST_F(ToolsE2eTest, MissingFileFailsCleanly) {
  const auto result =
      run_tool("ldp-cat", {mount_flag_, mount_.sub("ghost.dat")});
  EXPECT_EQ(result.exit_code, 1);
}

TEST_F(ToolsE2eTest, StatsToolPrintsAndDiffsDumps) {
  // Produce two real dumps via the registry's own serialiser, then check
  // ldp-stats can pretty-print one and diff the pair.
  namespace stats = ldplfs::stats;
  stats::force_enable(true);
  stats::reset();
  stats::add(stats::Counter::kRouterOpenRouted, 2);
  stats::add(stats::Counter::kRouterWriteBytes, 4096);
  stats::record(stats::Histogram::kRouterWriteLatency, 1500);
  ASSERT_TRUE(ldplfs::posix::write_file(scratch_.sub("before.json"),
                                        stats::to_json(stats::snapshot()))
                  .ok());
  stats::add(stats::Counter::kRouterOpenRouted, 3);
  ASSERT_TRUE(ldplfs::posix::write_file(scratch_.sub("after.json"),
                                        stats::to_json(stats::snapshot()))
                  .ok());
  stats::reset();

  auto result = run_tool("ldp-stats", {scratch_.sub("before.json")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("router.open.routed"), std::string::npos);
  EXPECT_NE(result.output.find("4096"), std::string::npos);
  EXPECT_NE(result.output.find("router.write.latency"), std::string::npos);
  // No resilience activity in this dump: the digest section is suppressed.
  EXPECT_EQ(result.output.find("resilience:"), std::string::npos);

  // A dump with breaker/retry counters grows the "resilience:" digest.
  stats::force_enable(true);
  stats::add(stats::Counter::kRetryAttempted, 7);
  stats::add(stats::Counter::kBreakerOpened, 1);
  stats::add(stats::Counter::kBreakerFastFail, 42);
  ASSERT_TRUE(ldplfs::posix::write_file(scratch_.sub("resilience.json"),
                                        stats::to_json(stats::snapshot()))
                  .ok());
  stats::reset();
  result = run_tool("ldp-stats", {scratch_.sub("resilience.json")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("resilience:"), std::string::npos);
  EXPECT_NE(result.output.find("7 attempted"), std::string::npos);
  EXPECT_NE(result.output.find("42 ops rejected"), std::string::npos);

  result = run_tool("ldp-stats", {"--diff", scratch_.sub("before.json"),
                                  scratch_.sub("after.json")});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("router.open.routed"), std::string::npos);
  EXPECT_NE(result.output.find("+3"), std::string::npos);

  EXPECT_EQ(run_tool("ldp-stats", {}).exit_code, 2);
  EXPECT_EQ(run_tool("ldp-stats", {scratch_.sub("absent.json")}).exit_code, 1);
}

TEST_F(ToolsE2eTest, FlattenedContainerServedByMappedPathWithZeroPreads) {
  // With LDPLFS_MMAP_READS on, cat/md5sum/grep on a flattened container
  // take the whole-file mapped path: identical output to the batched
  // preadv path, but zero routed preads.
  std::string content;
  for (int i = 0; i < 512; ++i) {
    content += (i % 128 == 0) ? "line with NEEDLE inside\n"
                              : "plain line of haystack text\n";
  }
  const std::string file = mount_.sub("flat.dat");
  make_container(file, content);
  ASSERT_TRUE(ldplfs::plfs::plfs_compact(file).ok());

  const auto cat_plain = run_tool("ldp-cat", {mount_flag_, file});
  const auto md5_plain = run_tool("ldp-md5sum", {mount_flag_, file});
  const auto grep_plain =
      run_tool("ldp-grep", {mount_flag_, "-c", "NEEDLE", file});

  const std::string dump = scratch_.sub("mmap_stats.json");
  ::setenv("LDPLFS_MMAP_READS", "1", 1);
  const auto cat_mapped = run_tool("ldp-cat", {mount_flag_, file});
  const auto grep_mapped =
      run_tool("ldp-grep", {mount_flag_, "-c", "NEEDLE", file});
  ::setenv("LDPLFS_STATS", dump.c_str(), 1);
  const auto md5_mapped = run_tool("ldp-md5sum", {mount_flag_, file});
  ::unsetenv("LDPLFS_STATS");
  ::unsetenv("LDPLFS_MMAP_READS");

  EXPECT_EQ(cat_mapped.exit_code, 0);
  EXPECT_EQ(cat_mapped.output, cat_plain.output);
  EXPECT_EQ(md5_mapped.exit_code, 0);
  EXPECT_EQ(md5_mapped.output, md5_plain.output);
  EXPECT_EQ(grep_mapped.exit_code, 0);
  EXPECT_EQ(grep_mapped.output, grep_plain.output);
  EXPECT_EQ(grep_mapped.output, "4\n");

  auto body = ldplfs::posix::read_file(dump);
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body.value().find("\"mmap.reads\": 1"), std::string::npos)
      << body.value();
  EXPECT_NE(body.value().find("\"router.preadv.routed\": 0"),
            std::string::npos)
      << body.value();
}

TEST_F(ToolsE2eTest, MappedPathFallsBackWhenAcquireFails) {
  // Eligible container but every map acquire refused: the tools must fall
  // back to the batched reader and still produce correct output.
  const std::string file = mount_.sub("flat.dat");
  make_container(file, "fallback bytes\n");
  ASSERT_TRUE(ldplfs::plfs::plfs_compact(file).ok());
  ::setenv("LDPLFS_MMAP_READS", "1", 1);
  ::setenv("LDPLFS_MMAP_FORCE_FALLBACK", "1", 1);
  const auto result = run_tool("ldp-cat", {mount_flag_, file});
  ::unsetenv("LDPLFS_MMAP_FORCE_FALLBACK");
  ::unsetenv("LDPLFS_MMAP_READS");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.output, "fallback bytes\n");
}

}  // namespace
