// Test scaffolding: RAII temporary directory + small data helpers.
#pragma once

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "posix/fd.hpp"

namespace ldplfs::testing {

/// mkdtemp-backed scratch directory, removed (recursively) on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/ldplfs_test_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      std::abort();  // tests cannot proceed without scratch space
    }
    path_ = buf.data();
  }

  ~TempDir() { (void)posix::remove_tree(path_); }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Path of an entry inside the directory.
  [[nodiscard]] std::string sub(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

/// Deterministic pseudo-random bytes (seeded) for content checks.
inline std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t word = rng.next();
    std::memcpy(out.data() + i, &word, 8);
    i += 8;
  }
  for (; i < n; ++i) out[i] = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

inline std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

inline std::string to_string(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

}  // namespace ldplfs::testing
